"""repro — data disguising: reversible, composable privacy transformations.

A from-scratch Python reproduction of *"Privacy Heroes Need Data
Disguises"* (Tsai, Schwarzkopf, Kohler — HotOS 2021): an embedded
relational storage engine, a disguise-specification language built on the
three fundamental operations (remove, modify, decorrelate), vaults that
store reveal functions across several deployment models, and a disguising
engine that applies, composes, and reverses disguises while preserving
referential integrity.

Quickstart::

    from repro import Database, Disguiser, parse_schema, Schema
    from repro import DisguiseSpec, TableDisguise, Remove, Decorrelate, FakeName

    db = Database(Schema(parse_schema(DDL)))
    engine = Disguiser(db)
    engine.register(my_spec)
    report = engine.apply(my_spec, uid=19)
    engine.reveal(report.disguise_id)
"""

from repro.core import (
    DecayPolicy,
    DecayStage,
    Disguiser,
    DisguisePlan,
    DisguiseReport,
    ExpirationPolicy,
    MigrationReport,
    PolicyScheduler,
    PrivacyAssertion,
    RevealReport,
    SimClock,
    UpdateGuard,
)
from repro.errors import (
    AssertionFailure,
    CryptoError,
    DisguiseError,
    ReproError,
    SpecError,
    StorageError,
    VaultError,
)
from repro.obs import (
    MetricsView,
    PlanReport,
    Registry,
    Span,
    TRACER,
    Tracer,
    disable_tracing,
    enable_tracing,
    render_spans,
    span,
    spans_to_jsonl,
    traced,
)
from repro.spec import (
    Decorrelate,
    Default,
    DisguiseSpec,
    FakeEmail,
    FakeName,
    Modify,
    RandomValue,
    Remove,
    Sequence,
    TableDisguise,
    find_interactions,
    named_modifier,
    redundant_decorrelations,
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    validate_spec,
)
from repro.storage import (
    AddColumn,
    Column,
    ColumnType,
    Database,
    DropColumn,
    RenameColumn,
    RenameTable,
    SchemaChange,
    FKAction,
    ForeignKey,
    QueryStats,
    Schema,
    TableSchema,
    load_database,
    parse_create_table,
    parse_schema,
    parse_select,
    parse_where,
    save_database,
)
from repro.vault import (
    EncryptedVault,
    FileVault,
    MemoryVault,
    MultiTierVault,
    TableVault,
    VaultEntry,
    VaultStore,
)

__version__ = "0.1.0"

__all__ = [
    "__version__",
    # engine
    "Disguiser",
    "DisguiseReport",
    "RevealReport",
    "PrivacyAssertion",
    "SimClock",
    "PolicyScheduler",
    "ExpirationPolicy",
    "DecayPolicy",
    "DecayStage",
    "DisguisePlan",
    "UpdateGuard",
    "MigrationReport",
    "SchemaChange",
    "AddColumn",
    "DropColumn",
    "RenameColumn",
    "RenameTable",
    # specs
    "DisguiseSpec",
    "TableDisguise",
    "Remove",
    "Modify",
    "Decorrelate",
    "RandomValue",
    "Default",
    "Sequence",
    "FakeName",
    "FakeEmail",
    "named_modifier",
    "spec_from_dict",
    "spec_from_json",
    "spec_to_dict",
    "validate_spec",
    "find_interactions",
    "redundant_decorrelations",
    # storage
    "Database",
    "Schema",
    "TableSchema",
    "Column",
    "ForeignKey",
    "FKAction",
    "ColumnType",
    "QueryStats",
    "parse_where",
    "parse_create_table",
    "parse_schema",
    "parse_select",
    "save_database",
    "load_database",
    # observability
    "Registry",
    "MetricsView",
    "PlanReport",
    "Span",
    "Tracer",
    "TRACER",
    "span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "render_spans",
    "spans_to_jsonl",
    # vaults
    "VaultStore",
    "VaultEntry",
    "MemoryVault",
    "TableVault",
    "FileVault",
    "EncryptedVault",
    "MultiTierVault",
    # errors
    "ReproError",
    "StorageError",
    "SpecError",
    "DisguiseError",
    "AssertionFailure",
    "VaultError",
    "CryptoError",
]
