"""Cryptographic substrate for encrypted vaults.

Research-grade constructions from hashlib primitives (see module docs);
NOT audited crypto.
"""

from repro.crypto.cipher import Ciphertext, SecretKey, decrypt, encrypt
from repro.crypto.shamir import Share, recover_secret, split_secret
from repro.crypto.threshold import DEFAULT_PARTIES, EscrowedKey, escrow_key

__all__ = [
    "SecretKey",
    "Ciphertext",
    "encrypt",
    "decrypt",
    "Share",
    "split_secret",
    "recover_secret",
    "EscrowedKey",
    "escrow_key",
    "DEFAULT_PARTIES",
]
