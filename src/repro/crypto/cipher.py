"""Authenticated stream cipher built from the hashlib primitives.

Vault contents "might be encrypted, and access might require explicit
approval by the user, who holds the private key" (paper §4.2). The standard
library ships no AEAD cipher, so we construct one from SHA-256:

* **Keystream**: SHA-256 in counter mode — ``block_i = SHA256(key || nonce
  || i)`` — XORed with the plaintext. With a uniformly random key and a
  never-reused nonce this is a PRF-based stream cipher.
* **Authentication**: encrypt-then-MAC with HMAC-SHA256 under an
  independent key derived from the master key.

This is honest research-grade crypto for reproducing the paper's vault
code paths; it is NOT audited and must not guard real secrets.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

from repro.errors import CryptoError

__all__ = ["SecretKey", "encrypt", "encrypt_many", "decrypt", "Ciphertext"]

_BLOCK = hashlib.sha256().digest_size  # 32 bytes
_NONCE_LEN = 16
_SEED_LEN = 12  # batch nonces: 12-byte random seed + 4-byte counter
_TAG_LEN = 32
KEY_LEN = 32


@dataclass(frozen=True)
class SecretKey:
    """A 32-byte symmetric master key.

    The enc/mac subkeys are derived once at construction: every
    encrypt/decrypt needs both, and re-running the HMAC derivation per
    access dominated the cost of sealing small vault entries.
    """

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) != KEY_LEN:
            raise CryptoError(f"key must be {KEY_LEN} bytes, got {len(self.material)}")
        object.__setattr__(self, "_enc_key", self._subkey(b"enc"))
        object.__setattr__(self, "_mac_key", self._subkey(b"mac"))

    @classmethod
    def generate(cls) -> "SecretKey":
        """A fresh random key from the OS CSPRNG."""
        return cls(os.urandom(KEY_LEN))

    @classmethod
    def from_passphrase(cls, passphrase: str, salt: bytes = b"repro-vault") -> "SecretKey":
        """Derive a key from a passphrase with PBKDF2-HMAC-SHA256."""
        material = hashlib.pbkdf2_hmac("sha256", passphrase.encode(), salt, 10_000)
        return cls(material)

    def _subkey(self, label: bytes) -> bytes:
        return hmac.new(self.material, label, hashlib.sha256).digest()

    @property
    def enc_key(self) -> bytes:
        return self._enc_key  # type: ignore[attr-defined]

    @property
    def mac_key(self) -> bytes:
        return self._mac_key  # type: ignore[attr-defined]


@dataclass(frozen=True)
class Ciphertext:
    """Nonce, ciphertext body, and authentication tag."""

    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        return self.nonce + self.tag + self.body

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Ciphertext":
        if len(blob) < _NONCE_LEN + _TAG_LEN:
            raise CryptoError("ciphertext too short")
        return cls(
            nonce=blob[:_NONCE_LEN],
            tag=blob[_NONCE_LEN : _NONCE_LEN + _TAG_LEN],
            body=blob[_NONCE_LEN + _TAG_LEN :],
        )


def _keystream(enc_key: bytes, nonce: bytes, length: int) -> bytes:
    prefix = enc_key + nonce
    blocks = (length + _BLOCK - 1) // _BLOCK
    out = b"".join(
        hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
        for counter in range(blocks)
    )
    return out[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    """XOR equal-length byte strings as one big-int operation.

    ~40x faster than the per-byte generator it replaced: the work happens
    in CPython's long arithmetic instead of a Python-level loop.
    """
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(len(data), "big")


def encrypt(key: SecretKey, plaintext: bytes, nonce: bytes | None = None) -> Ciphertext:
    """Encrypt and authenticate *plaintext* under *key*."""
    if nonce is None:
        nonce = os.urandom(_NONCE_LEN)
    if len(nonce) != _NONCE_LEN:
        raise CryptoError(f"nonce must be {_NONCE_LEN} bytes")
    stream = _keystream(key.enc_key, nonce, len(plaintext))
    body = _xor(plaintext, stream)
    tag = hmac.new(key.mac_key, nonce + body, hashlib.sha256).digest()
    return Ciphertext(nonce=nonce, body=body, tag=tag)


def encrypt_many(
    key: SecretKey,
    plaintexts: list[bytes],
    seed: bytes | None = None,
) -> list[Ciphertext]:
    """Encrypt a batch under one key with amortized per-entry overhead.

    Entry *j* gets the nonce ``seed || j`` (12 random bytes + 4-byte
    big-endian counter), so one CSPRNG draw covers the batch while every
    nonce stays unique under the key. The keystream for the whole batch is
    generated in one pass and XORed over the concatenated plaintexts as a
    single big-int operation; tags are still per entry, so each returned
    :class:`Ciphertext` is independently verifiable by :func:`decrypt`.
    """
    plaintexts = list(plaintexts)
    if seed is None:
        seed = os.urandom(_SEED_LEN)
    if len(seed) != _SEED_LEN:
        raise CryptoError(f"batch seed must be {_SEED_LEN} bytes")
    if len(plaintexts) >= 1 << 32:
        raise CryptoError("batch too large for the 4-byte nonce counter")
    enc_key = key.enc_key
    mac_key = key.mac_key
    sha = hashlib.sha256
    nonces = [
        seed + j.to_bytes(_NONCE_LEN - _SEED_LEN, "big")
        for j in range(len(plaintexts))
    ]
    parts: list[bytes] = []
    for nonce, plaintext in zip(nonces, plaintexts):
        length = len(plaintext)
        if not length:
            continue
        prefix = enc_key + nonce
        parts.append(
            b"".join(
                sha(prefix + counter.to_bytes(8, "big")).digest()
                for counter in range((length + _BLOCK - 1) // _BLOCK)
            )[:length]
        )
    bodies = _xor(b"".join(plaintexts), b"".join(parts))
    out: list[Ciphertext] = []
    offset = 0
    for nonce, plaintext in zip(nonces, plaintexts):
        end = offset + len(plaintext)
        body = bodies[offset:end]
        offset = end
        tag = hmac.new(mac_key, nonce + body, hashlib.sha256).digest()
        out.append(Ciphertext(nonce=nonce, body=body, tag=tag))
    return out


def decrypt(key: SecretKey, ciphertext: Ciphertext) -> bytes:
    """Verify and decrypt; raises :class:`CryptoError` on a bad tag."""
    expected = hmac.new(
        key.mac_key, ciphertext.nonce + ciphertext.body, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(expected, ciphertext.tag):
        raise CryptoError("authentication failed: wrong key or corrupted ciphertext")
    stream = _keystream(key.enc_key, ciphertext.nonce, len(ciphertext.body))
    return _xor(ciphertext.body, stream)
