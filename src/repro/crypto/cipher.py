"""Authenticated stream cipher built from the hashlib primitives.

Vault contents "might be encrypted, and access might require explicit
approval by the user, who holds the private key" (paper §4.2). The standard
library ships no AEAD cipher, so we construct one from SHA-256:

* **Keystream**: SHA-256 in counter mode — ``block_i = SHA256(key || nonce
  || i)`` — XORed with the plaintext. With a uniformly random key and a
  never-reused nonce this is a PRF-based stream cipher.
* **Authentication**: encrypt-then-MAC with HMAC-SHA256 under an
  independent key derived from the master key.

This is honest research-grade crypto for reproducing the paper's vault
code paths; it is NOT audited and must not guard real secrets.
"""

from __future__ import annotations

import hashlib
import hmac
import os
from dataclasses import dataclass

from repro.errors import CryptoError

__all__ = ["SecretKey", "encrypt", "decrypt", "Ciphertext"]

_BLOCK = hashlib.sha256().digest_size  # 32 bytes
_NONCE_LEN = 16
_TAG_LEN = 32
KEY_LEN = 32


@dataclass(frozen=True)
class SecretKey:
    """A 32-byte symmetric master key."""

    material: bytes

    def __post_init__(self) -> None:
        if len(self.material) != KEY_LEN:
            raise CryptoError(f"key must be {KEY_LEN} bytes, got {len(self.material)}")

    @classmethod
    def generate(cls) -> "SecretKey":
        """A fresh random key from the OS CSPRNG."""
        return cls(os.urandom(KEY_LEN))

    @classmethod
    def from_passphrase(cls, passphrase: str, salt: bytes = b"repro-vault") -> "SecretKey":
        """Derive a key from a passphrase with PBKDF2-HMAC-SHA256."""
        material = hashlib.pbkdf2_hmac("sha256", passphrase.encode(), salt, 10_000)
        return cls(material)

    def _subkey(self, label: bytes) -> bytes:
        return hmac.new(self.material, label, hashlib.sha256).digest()

    @property
    def enc_key(self) -> bytes:
        return self._subkey(b"enc")

    @property
    def mac_key(self) -> bytes:
        return self._subkey(b"mac")


@dataclass(frozen=True)
class Ciphertext:
    """Nonce, ciphertext body, and authentication tag."""

    nonce: bytes
    body: bytes
    tag: bytes

    def to_bytes(self) -> bytes:
        return self.nonce + self.tag + self.body

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Ciphertext":
        if len(blob) < _NONCE_LEN + _TAG_LEN:
            raise CryptoError("ciphertext too short")
        return cls(
            nonce=blob[:_NONCE_LEN],
            tag=blob[_NONCE_LEN : _NONCE_LEN + _TAG_LEN],
            body=blob[_NONCE_LEN + _TAG_LEN :],
        )


def _keystream(enc_key: bytes, nonce: bytes, length: int) -> bytes:
    prefix = enc_key + nonce
    blocks = (length + _BLOCK - 1) // _BLOCK
    out = b"".join(
        hashlib.sha256(prefix + counter.to_bytes(8, "big")).digest()
        for counter in range(blocks)
    )
    return out[:length]


def _xor(data: bytes, stream: bytes) -> bytes:
    """XOR equal-length byte strings as one big-int operation.

    ~40x faster than the per-byte generator it replaced: the work happens
    in CPython's long arithmetic instead of a Python-level loop.
    """
    return (
        int.from_bytes(data, "big") ^ int.from_bytes(stream, "big")
    ).to_bytes(len(data), "big")


def encrypt(key: SecretKey, plaintext: bytes, nonce: bytes | None = None) -> Ciphertext:
    """Encrypt and authenticate *plaintext* under *key*."""
    if nonce is None:
        nonce = os.urandom(_NONCE_LEN)
    if len(nonce) != _NONCE_LEN:
        raise CryptoError(f"nonce must be {_NONCE_LEN} bytes")
    stream = _keystream(key.enc_key, nonce, len(plaintext))
    body = _xor(plaintext, stream)
    tag = hmac.new(key.mac_key, nonce + body, hashlib.sha256).digest()
    return Ciphertext(nonce=nonce, body=body, tag=tag)


def decrypt(key: SecretKey, ciphertext: Ciphertext) -> bytes:
    """Verify and decrypt; raises :class:`CryptoError` on a bad tag."""
    expected = hmac.new(
        key.mac_key, ciphertext.nonce + ciphertext.body, hashlib.sha256
    ).digest()
    if not hmac.compare_digest(expected, ciphertext.tag):
        raise CryptoError("authentication failed: wrong key or corrupted ciphertext")
    stream = _keystream(key.enc_key, ciphertext.nonce, len(ciphertext.body))
    return _xor(ciphertext.body, stream)
