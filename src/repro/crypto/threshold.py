"""Threshold key escrow for vault keys (paper §4.2, footnote 1).

"To protect against lost keys, the vault could be threshold encrypted with
a private key secret-shared between the user, the web application, and a
trusted third party (e.g., the EFF), so that the user can authorize the
application and the third party to decrypt."

:class:`EscrowedKey` wraps a vault :class:`~repro.crypto.cipher.SecretKey`
whose material is secret-shared among named parties with a recovery
threshold. The canonical deployment is 2-of-3 among ``user``, ``app``, and
``third_party``: the user alone cannot lose the vault forever, and neither
the application nor the third party can open it unilaterally.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.cipher import KEY_LEN, SecretKey
from repro.crypto.shamir import Share, recover_secret, split_secret
from repro.errors import CryptoError

__all__ = ["EscrowedKey", "escrow_key", "DEFAULT_PARTIES"]

DEFAULT_PARTIES = ("user", "app", "third_party")


@dataclass(frozen=True)
class EscrowedKey:
    """A vault key split among parties; *threshold* shares reconstruct it."""

    threshold: int
    shares: dict[str, Share]

    def parties(self) -> tuple[str, ...]:
        return tuple(self.shares)

    def recover(self, *consenting: str) -> SecretKey:
        """Reconstruct the key from the shares of *consenting* parties.

        Raises :class:`CryptoError` if an unknown party is named or fewer
        than *threshold* distinct parties consent — modeling the approval
        requirement of §4.2.
        """
        distinct = list(dict.fromkeys(consenting))
        missing = [p for p in distinct if p not in self.shares]
        if missing:
            raise CryptoError(f"unknown part(y/ies): {missing}")
        if len(distinct) < self.threshold:
            raise CryptoError(
                f"{len(distinct)} consenting part(y/ies) < threshold {self.threshold}"
            )
        shares = [self.shares[p] for p in distinct]
        return SecretKey(recover_secret(shares, KEY_LEN))


def escrow_key(
    key: SecretKey,
    parties: tuple[str, ...] = DEFAULT_PARTIES,
    threshold: int = 2,
) -> EscrowedKey:
    """Split *key* among *parties* with the given recovery *threshold*."""
    if len(set(parties)) != len(parties):
        raise CryptoError("party names must be distinct")
    shares = split_secret(key.material, threshold, len(parties))
    return EscrowedKey(
        threshold=threshold,
        shares=dict(zip(parties, shares)),
    )
