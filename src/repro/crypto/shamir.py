"""Shamir secret sharing over a prime field.

The paper's footnote 1 proposes protecting vault keys against loss by
threshold-encrypting them "with a private key secret-shared between the
user, the web application, and a trusted third party". This module
implements Shamir's scheme [Shamir, CACM 1979] over GF(p) with the NIST
P-521 prime, large enough to share a 32-byte key directly as a field
element.

A (k, n) sharing splits a secret into n shares such that any k reconstruct
it and any k-1 reveal nothing (information-theoretically).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import CryptoError

__all__ = ["Share", "split_secret", "recover_secret", "PRIME"]

# 2**521 - 1, a Mersenne prime > 2**256, so any 32-byte secret fits.
PRIME = 2**521 - 1


@dataclass(frozen=True)
class Share:
    """One share: the evaluation point x and value y = f(x) mod PRIME."""

    x: int
    y: int

    def to_bytes(self) -> bytes:
        return self.x.to_bytes(2, "big") + self.y.to_bytes(66, "big")

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Share":
        if len(blob) != 68:
            raise CryptoError("malformed share")
        return cls(x=int.from_bytes(blob[:2], "big"), y=int.from_bytes(blob[2:], "big"))


def _rand_coefficient() -> int:
    return int.from_bytes(os.urandom(66), "big") % PRIME


def split_secret(secret: bytes, threshold: int, shares: int) -> list[Share]:
    """Split *secret* into *shares* pieces, any *threshold* of which recover it."""
    if threshold < 1:
        raise CryptoError("threshold must be >= 1")
    if shares < threshold:
        raise CryptoError("cannot issue fewer shares than the threshold")
    if shares > 1000:
        raise CryptoError("too many shares requested")
    value = int.from_bytes(secret, "big")
    if value >= PRIME:
        raise CryptoError("secret too large for the field")
    # f(0) = secret; higher coefficients uniformly random.
    coefficients = [value] + [_rand_coefficient() for _ in range(threshold - 1)]
    out = []
    for x in range(1, shares + 1):
        y = 0
        # Horner evaluation of f(x) mod PRIME.
        for coefficient in reversed(coefficients):
            y = (y * x + coefficient) % PRIME
        out.append(Share(x=x, y=y))
    return out


def recover_secret(shares: list[Share], secret_len: int = 32) -> bytes:
    """Reconstruct the secret from at least *threshold* distinct shares.

    Callers pass any subset of size >= threshold; extra shares are fine
    (Lagrange interpolation at 0 uses all of them consistently). Duplicated
    x coordinates raise.
    """
    if not shares:
        raise CryptoError("no shares given")
    xs = [s.x for s in shares]
    if len(set(xs)) != len(xs):
        raise CryptoError("duplicate shares")
    # Lagrange interpolation at x = 0.
    total = 0
    for i, share_i in enumerate(shares):
        numerator = 1
        denominator = 1
        for j, share_j in enumerate(shares):
            if i == j:
                continue
            numerator = (numerator * (-share_j.x)) % PRIME
            denominator = (denominator * (share_i.x - share_j.x)) % PRIME
        term = share_i.y * numerator * pow(denominator, -1, PRIME)
        total = (total + term) % PRIME
    try:
        return total.to_bytes(secret_len, "big")
    except OverflowError:
        raise CryptoError(
            "reconstructed value does not fit the expected secret length "
            "(insufficient or mismatched shares?)"
        ) from None
