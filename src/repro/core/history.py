"""The persistent disguise history log (paper §5).

"Edna also keeps a disguise history table that logs all disguises
performed." The log lives in the application database (table
``_disguise_history``) so it is transactional with disguise application:
a rolled-back disguise leaves no history row.

Reveal uses the log two ways (§4.2): to find a disguise's epoch, and to
enumerate the *later* still-active disguises whose operations must be
re-applied to revealed data.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any

from repro.errors import DisguiseError, VaultError
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import ColumnType

__all__ = ["DisguiseHistory", "HistoryRecord"]

HISTORY_TABLE = "_disguise_history"
JOBS_TABLE = "_applied_jobs"


def _jobs_schema() -> TableSchema:
    return TableSchema(
        JOBS_TABLE,
        [
            Column("job", ColumnType.TEXT, nullable=False),
            Column("did", ColumnType.INTEGER, nullable=False),
        ],
        primary_key="job",
    )


def _history_schema() -> TableSchema:
    return TableSchema(
        HISTORY_TABLE,
        [
            Column("did", ColumnType.INTEGER, nullable=False),
            Column("name", ColumnType.TEXT, nullable=False),
            Column("uid", ColumnType.TEXT),  # str(user id); NULL for global
            Column("epoch", ColumnType.INTEGER, nullable=False),
            Column("active", ColumnType.BOOL, nullable=False, default=True),
            Column("reversible", ColumnType.BOOL, nullable=False, default=True),
            Column("user_invoked", ColumnType.BOOL, nullable=False, default=False),
            Column("last_seq", ColumnType.INTEGER, nullable=False, default=0),
            Column("entries", ColumnType.INTEGER, nullable=False, default=0),
        ],
        primary_key="did",
    )


@dataclass(frozen=True)
class HistoryRecord:
    """One applied disguise, as recorded in the log."""

    did: int
    name: str
    uid: Any
    epoch: int
    active: bool
    reversible: bool
    user_invoked: bool
    entries: int

    @classmethod
    def from_row(cls, row: dict[str, Any]) -> "HistoryRecord":
        uid = row["uid"]
        if isinstance(uid, str) and uid.isdigit():
            uid = int(uid)
        return cls(
            did=row["did"],
            name=row["name"],
            uid=uid,
            epoch=row["epoch"],
            active=row["active"],
            reversible=row["reversible"],
            user_invoked=row["user_invoked"],
            entries=row.get("entries", 0),
        )


class DisguiseHistory:
    """Log of all disguises applied to one database, plus id allocation.

    Sequence numbers (``seq``) totally order physical changes across
    disguises; entry ids uniquely name vault entries. Both counters are
    kept in memory and checkpointed onto each disguise's history row
    (``last_seq``), so a fresh engine attached to an existing database
    resumes numbering correctly.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        if not db.has_table(HISTORY_TABLE):
            db.create_table(_history_schema())
        if not db.has_table(JOBS_TABLE):
            db.create_table(_jobs_schema())
        self._next_did = 1
        self._next_seq = 1
        # Concurrent workers share one history; id allocation is the only
        # in-memory state, so a mutex over the counters suffices (rows are
        # written through the locked/latched Database statement API).
        self._alloc_mu = threading.Lock()
        for row in db.table(HISTORY_TABLE).rows():
            self._next_did = max(self._next_did, row["did"] + 1)
            self._next_seq = max(self._next_seq, row["last_seq"] + 1)

    # -- id allocation -----------------------------------------------------------

    def next_seq(self) -> int:
        with self._alloc_mu:
            seq = self._next_seq
            self._next_seq += 1
            return seq

    # Entry ids share the seq counter: both need only global uniqueness and
    # monotonicity, and one counter means one checkpoint.
    next_entry_id = next_seq

    def resume_from_vault(self, vault: Any) -> None:
        """Advance the id counters past everything the vault has seen.

        The vault journals durably *inside* the apply transaction, so a
        crash between the vault append and the WAL commit strands entries
        whose disguise/entry ids were never committed to a history row.
        Resuming the counters from history alone would re-issue those
        ids: the next disguise would alias the stranded entries (their
        stale values would masquerade as its own vault state), and
        re-used entry ids collide in the per-owner journals. Found by
        the deterministic simulation harness.
        """
        try:
            owners = vault.owners()
        except (NotImplementedError, VaultError):
            return  # non-enumerable deployments (encrypted, third-party)
        with self._alloc_mu:
            for owner in owners:
                for entry in vault.entries_for(owner):
                    self._next_did = max(self._next_did, entry.disguise_id + 1)
                    self._next_seq = max(
                        self._next_seq, max(entry.entry_id, entry.seq) + 1
                    )

    # -- log records --------------------------------------------------------------

    def open(
        self,
        name: str,
        uid: Any,
        reversible: bool,
        user_invoked: bool,
    ) -> int:
        """Append a new in-progress disguise; returns its disguise id.

        The epoch of a disguise equals its id: ids are allocated in
        application order, so comparisons on epoch give log order.
        """
        with self._alloc_mu:
            did = self._next_did
            self._next_did += 1
        self.db.insert(
            HISTORY_TABLE,
            {
                "did": did,
                "name": name,
                "uid": None if uid is None else str(uid),
                "epoch": did,
                "active": True,
                "reversible": reversible,
                "user_invoked": user_invoked,
                "last_seq": 0,
                "entries": 0,
            },
        )
        return did

    def checkpoint(self, did: int, entries_written: int | None = None) -> None:
        """Record the seq high-water mark (and optionally the number of
        vault entries the disguise wrote) on the disguise's row.

        The entry count lets reveal distinguish a disguise that legitimately
        changed nothing (reveal is a no-op) from one whose vault entries
        expired (reveal is impossible, §4.2)."""
        changes: dict = {"last_seq": self._next_seq - 1}
        if entries_written is not None:
            changes["entries"] = entries_written
        self.db.update_by_pk(HISTORY_TABLE, did, changes)

    def adjust_entries(self, did: int, delta: int) -> None:
        """Maintain the live vault-entry count for a disguise.

        The journal calls this on every entry put/delete, so ``entries``
        always reflects what remains in the vaults: composition may consume
        another disguise's entries (the rows it would reverse are gone),
        and reveal must treat that as "nothing left to do", not "expired".
        """
        row = self.db.get(HISTORY_TABLE, did)
        if row is not None:
            self.db.update_by_pk(
                HISTORY_TABLE, did, {"entries": max(0, row["entries"] + delta)}
            )

    def record_job(self, job: str, did: int) -> None:
        """Bind a service job token to the disguise it applied.

        Written inside the apply transaction, so the binding is exactly as
        durable as the apply: a job that re-runs after a crash (its queue
        ack was lost) finds the binding and completes as a no-op instead
        of applying the disguise a second time."""
        self.db.insert(JOBS_TABLE, {"job": job, "did": did})

    def job_applied(self, job: str) -> int | None:
        """The disguise id *job* already applied, or None."""
        row = self.db.get(JOBS_TABLE, job)
        return None if row is None else int(row["did"])

    def get(self, did: int) -> HistoryRecord:
        row = self.db.get(HISTORY_TABLE, did)
        if row is None:
            raise DisguiseError(f"no disguise with id {did}")
        return HistoryRecord.from_row(row)

    def deactivate(self, did: int) -> None:
        """Mark a disguise as reversed (it no longer affects the database)."""
        self.db.update_by_pk(HISTORY_TABLE, did, {"active": False})

    def records(self, active_only: bool = False) -> list[HistoryRecord]:
        rows = self.db.select(HISTORY_TABLE)
        records = [HistoryRecord.from_row(row) for row in rows]
        records.sort(key=lambda record: record.epoch)
        if active_only:
            records = [record for record in records if record.active]
        return records

    def active_after(self, epoch: int) -> list[HistoryRecord]:
        """Active disguises applied after *epoch*, in log order — the
        "relevant log interval" whose operations reveal must re-apply."""
        return [
            record
            for record in self.records(active_only=True)
            if record.epoch > epoch
        ]

    def active_for_user(self, uid: Any, before_epoch: int | None = None) -> list[HistoryRecord]:
        """Active disguises that may hold vault state for *uid*: the user's
        own disguises plus all global ones."""
        out = []
        for record in self.records(active_only=True):
            if before_epoch is not None and record.epoch >= before_epoch:
                continue
            if record.uid is None or record.uid == uid:
                out.append(record)
        return out
