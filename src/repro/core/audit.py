"""Erasure auditing: catch disguise specs that leak data (paper §7).

"Data disguising … is only as good as the developer-written specification.
We imagine that data analysis tools and heuristics can help developers
improve or catch errors in disguise specifications, similar to e.g.,
techniques for detecting incorrect deletion [DELF]."

Two auditors, both heuristic by design:

* :func:`audit_user_erasure` — after disguising user U, scan the database
  for traces of U: surviving rows that reference U through any FK chain to
  the user table, plus *value* traces — the user's known identifiers
  (email, name, …) appearing verbatim in any text column, which catches
  denormalized copies a schema-driven spec misses (e.g. HotCRP's
  ``Paper.authorInformation``).
* :func:`scan_for_pii` — schema-independent sweep for PII-shaped values
  (email addresses, IPv4 addresses, phone-like digit runs) left anywhere
  in the database; useful after a ConfAnon-style global disguise.

Findings are advisory: a finding is a *candidate* leak for a human (or an
assertion) to judge — heuristics trade false positives for recall, like
DELF's detection side.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, Iterable

from repro.storage.database import Database

__all__ = ["LeakFinding", "audit_user_erasure", "scan_for_pii", "PII_PATTERNS"]


@dataclass(frozen=True)
class LeakFinding:
    """One candidate leak."""

    table: str
    pk: Any
    column: str
    kind: str  # "reference" | "value" | "pattern"
    detail: str

    def __str__(self) -> str:  # pragma: no cover - rendering
        return f"{self.table}({self.pk}).{self.column}: {self.kind} — {self.detail}"


def _is_placeholder(db: Database, table: str, pk: Any) -> bool:
    """Rows the engine minted as placeholders carry synthetic values, not
    PII; the auditor consults the engine's registry to skip them."""
    from repro.core.physical import REGISTRY_TABLE, PlaceholderRegistry

    if not db.has_table(REGISTRY_TABLE):
        return False
    return db.get(REGISTRY_TABLE, PlaceholderRegistry._key(table, pk)) is not None


PII_PATTERNS: dict[str, re.Pattern[str]] = {
    "email": re.compile(r"[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}"),
    "ipv4": re.compile(r"\b(?:\d{1,3}\.){3}\d{1,3}\b"),
    "phone": re.compile(r"\b\+?\d[\d\s().-]{7,}\d\b"),
}

# Addresses the library itself mints for anonymization are not leaks.
_SAFE_EMAIL = re.compile(r"@anon\.invalid$")


def audit_user_erasure(
    db: Database,
    user_table: str,
    uid: Any,
    identifiers: Iterable[str] = (),
    skip_tables: Iterable[str] = (),
) -> list[LeakFinding]:
    """Scan for traces of user *uid* after an erasure-style disguise.

    *identifiers* are the user's known string identifiers (captured before
    the disguise — the auditor deliberately does not read vaults). Engine
    metadata tables (``_``-prefixed) are always skipped.
    """
    skip = {name for name in skip_tables}
    findings: list[LeakFinding] = []

    # 1. The account row itself.
    if user_table not in skip and db.get(user_table, uid) is not None:
        findings.append(
            LeakFinding(user_table, uid, db.table(user_table).schema.primary_key,
                        "reference", "account row still present")
        )

    # 2. Any FK into the user table still carrying uid.
    for child_schema, fk in db.schema.referencing(user_table):
        if child_schema.name in skip or child_schema.name.startswith("_"):
            continue
        for row in db.table(child_schema.name).referencing_rows(fk.column, uid):
            findings.append(
                LeakFinding(
                    child_schema.name,
                    row[child_schema.primary_key],
                    fk.column,
                    "reference",
                    f"foreign key still references {user_table}.{uid}",
                )
            )

    # 3. Verbatim identifier values in any text column of any table.
    needles = [needle for needle in identifiers if needle]
    if needles:
        for table_schema in db.schema:
            if table_schema.name in skip or table_schema.name.startswith("_"):
                continue
            text_columns = [
                col.name
                for col in table_schema.columns
                if col.ctype.value == "TEXT"
            ]
            if not text_columns:
                continue
            for row in db.table(table_schema.name).rows():
                for column in text_columns:
                    value = row[column]
                    if not isinstance(value, str):
                        continue
                    for needle in needles:
                        if needle in value:
                            findings.append(
                                LeakFinding(
                                    table_schema.name,
                                    row[table_schema.primary_key],
                                    column,
                                    "value",
                                    f"contains identifier {needle!r}",
                                )
                            )
    return findings


def scan_for_pii(
    db: Database,
    patterns: dict[str, re.Pattern[str]] | None = None,
    skip_tables: Iterable[str] = (),
) -> list[LeakFinding]:
    """Sweep every text column for PII-shaped values.

    Columns *declared* PII in the schema are reported whenever non-NULL
    (they should have been scrubbed); other text columns are reported only
    on a pattern hit.
    """
    active = patterns if patterns is not None else PII_PATTERNS
    skip = set(skip_tables)
    findings: list[LeakFinding] = []
    for table_schema in db.schema:
        if table_schema.name in skip or table_schema.name.startswith("_"):
            continue
        text_columns = [
            col for col in table_schema.columns if col.ctype.value == "TEXT"
        ]
        if not text_columns:
            continue
        for row in db.table(table_schema.name).rows():
            if _is_placeholder(db, table_schema.name, row[table_schema.primary_key]):
                continue
            for col in text_columns:
                value = row[col.name]
                if not isinstance(value, str) or not value:
                    continue
                if value == "[redacted]" or value == "[deleted]":
                    continue
                if col.pii:
                    if not _SAFE_EMAIL.search(value):
                        findings.append(
                            LeakFinding(
                                table_schema.name,
                                row[table_schema.primary_key],
                                col.name,
                                "pattern",
                                "declared-PII column is not scrubbed",
                            )
                        )
                    continue
                for name, pattern in active.items():
                    match = pattern.search(value)
                    if match and not (name == "email" and _SAFE_EMAIL.search(match.group())):
                        findings.append(
                            LeakFinding(
                                table_schema.name,
                                row[table_schema.primary_key],
                                col.name,
                                "pattern",
                                f"{name}-shaped value {match.group()!r}",
                            )
                        )
                        break
    return findings
