"""Physical disguise operations and their reversal.

Everything that actually touches rows lives here, shared by apply
(:mod:`repro.core.apply`), composition (:mod:`repro.core.compose`), and
reveal (:mod:`repro.core.reveal`):

* executing a Remove / Modify / Decorrelate against one row, producing the
  vault entry that reverses it;
* reversing a vault entry (the materialized "reveal function");
* re-executing a vault entry's operation after a temporary reversal
  (composition and chain reveal need this).

A :class:`VaultJournal` wraps the vault store during a disguise so vault
writes can be compensated if the database transaction rolls back — the
vault may live outside the database, so it does not participate in the
storage engine's undo log.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any

from repro.errors import DisguiseError, SpecError
from repro.spec.disguise import DisguiseSpec, TableDisguise
from repro.spec.generate import GenContext
from repro.storage.database import Database
from repro.storage.predicate import ColumnRef, InList, Literal
from repro.storage.schema import FKAction, Schema
from repro.vault.base import VaultStore
from repro.vault.entry import OP_DECORRELATE, OP_MODIFY, OP_REMOVE, VaultEntry

__all__ = ["PlaceholderFactory", "PlaceholderRegistry", "VaultJournal", "OpExecutor"]

REGISTRY_TABLE = "_placeholders"


class PlaceholderRegistry:
    """Engine metadata: which rows are placeholders it created.

    Two consumers: owner routing (a vault entry whose "owner" would be a
    placeholder goes to the global vault instead — placeholders are not
    people and have no vault; crucially, the engine must *not* resolve the
    placeholder back to the real user, which would defeat decorrelation)
    and garbage collection. Lives in a database table so it is
    transactional with disguise application.
    """

    def __init__(self, db: Database) -> None:
        self.db = db
        if not db.has_table(REGISTRY_TABLE):
            from repro.storage.schema import Column, TableSchema
            from repro.storage.types import ColumnType

            db.create_table(
                TableSchema(
                    REGISTRY_TABLE,
                    [
                        Column("key", ColumnType.TEXT, nullable=False),
                        Column("created_by", ColumnType.INTEGER, nullable=False),
                    ],
                    primary_key="key",
                )
            )

    @staticmethod
    def _key(table: str, pk: Any) -> str:
        return f"{table}:{pk!r}"

    def add(self, table: str, pk: Any, disguise_id: int) -> None:
        self.db.insert(
            REGISTRY_TABLE, {"key": self._key(table, pk), "created_by": disguise_id}
        )

    def add_many(self, table: str, pks: list[Any], disguise_id: int) -> None:
        if not pks:
            return
        self.db.insert_many(
            REGISTRY_TABLE,
            [
                {"key": self._key(table, pk), "created_by": disguise_id}
                for pk in pks
            ],
        )

    def remove(self, table: str, pk: Any) -> None:
        key = self._key(table, pk)
        if self.db.get(REGISTRY_TABLE, key) is not None:
            self.db.delete_by_pk(REGISTRY_TABLE, key)

    def is_placeholder(self, table: str, pk: Any) -> bool:
        return self.db.get(REGISTRY_TABLE, self._key(table, pk)) is not None


class PlaceholderFactory:
    """Creates placeholder rows for decorrelation (Figure 2's anonymous users).

    One factory per disguise application: its counter feeds ``Sequence``
    generators and its RNG is the engine's seeded RNG, so placeholder
    content is reproducible under a fixed seed.
    """

    def __init__(
        self,
        db: Database,
        rng: random.Random,
        registry: "PlaceholderRegistry | None" = None,
        disguise_id: int = 0,
    ) -> None:
        self.db = db
        self.rng = rng
        self.registry = registry
        self.disguise_id = disguise_id
        self.counter = 0
        self.created = 0

    def build(self, parent_table: str, table_disguise: TableDisguise) -> dict[str, Any]:
        """Insert and return a fresh placeholder row in *parent_table*.

        Columns listed in the spec's ``generate_placeholder`` use their
        generators; the primary key is allocated; everything else takes the
        schema default.
        """
        schema = self.db.table(parent_table).schema
        if not table_disguise.generate_placeholder:
            raise SpecError(
                f"no generate_placeholder for table {parent_table!r}; "
                f"cannot create placeholders"
            )
        self.counter += 1
        row: dict[str, Any] = {schema.primary_key: self.db.next_id(parent_table)}
        for column_name, generator in table_disguise.generate_placeholder.items():
            column = schema.column(column_name)
            ctx = GenContext(rng=self.rng, column=column, counter=self.counter)
            row[column_name] = generator.generate(ctx)
        # normalize_row in insert fills remaining defaults.
        stored = self.db.insert(parent_table, row)
        if self.registry is not None:
            self.registry.add(
                parent_table, stored[schema.primary_key], self.disguise_id
            )
        self.created += 1
        return stored

    def build_many(
        self, parent_table: str, table_disguise: TableDisguise, n: int
    ) -> list[dict[str, Any]]:
        """Insert *n* fresh placeholders with one batched statement.

        Generator, counter, and id-allocation order match *n* sequential
        :meth:`build` calls exactly, so placeholder content is identical
        under a fixed seed — only the number of statements changes.
        """
        if n == 0:
            return []
        schema = self.db.table(parent_table).schema
        if not table_disguise.generate_placeholder:
            raise SpecError(
                f"no generate_placeholder for table {parent_table!r}; "
                f"cannot create placeholders"
            )
        rows: list[dict[str, Any]] = []
        for _ in range(n):
            self.counter += 1
            row: dict[str, Any] = {
                schema.primary_key: self.db.next_id(parent_table)
            }
            for column_name, generator in table_disguise.generate_placeholder.items():
                column = schema.column(column_name)
                ctx = GenContext(rng=self.rng, column=column, counter=self.counter)
                row[column_name] = generator.generate(ctx)
            rows.append(row)
        stored = self.db.insert_many(parent_table, rows)
        if self.registry is not None:
            self.registry.add_many(
                parent_table,
                [row[schema.primary_key] for row in stored],
                self.disguise_id,
            )
        self.created += n
        return stored


class VaultJournal:
    """Vault writes with compensation, for atomicity with the db transaction.

    When given a history log, the journal also maintains each disguise's
    live entry count (``adjust_entries``); those counter updates are plain
    database writes inside the open transaction, so they roll back with it.
    """

    def __init__(self, vault: VaultStore, history=None) -> None:
        self.vault = vault
        self.history = history
        self._undo: list[tuple[str, Any]] = []
        self._doomed: list[VaultEntry] = []
        self._doomed_ids: set[tuple[Any, int]] = set()
        self.writes = 0

    def _adjust(self, disguise_id: int, delta: int) -> None:
        if self.history is not None:
            self.history.adjust_entries(disguise_id, delta)

    def put(self, entry: VaultEntry) -> None:
        self.vault.put(entry)
        self.writes += 1
        self._undo.append(("put", entry))
        self._adjust(entry.disguise_id, +1)

    def put_many(self, entries: list[VaultEntry]) -> None:
        # Compensation is registered BEFORE the batch write: a store may
        # fail partway through the batch, and every _delete implementation
        # ignores ids that were never written, so over-compensating is safe
        # while under-compensating would leak orphan entries.
        if not entries:
            return
        for entry in entries:
            self._undo.append(("put", entry))
        self.vault.put_many(entries)
        self.writes += len(entries)
        # One grouped counter update per disguise, not one per entry; the
        # deltas are all positive so grouping cannot interact with the
        # max(0, ...) clamp in adjust_entries.
        deltas: dict[int, int] = {}
        for entry in entries:
            deltas[entry.disguise_id] = deltas.get(entry.disguise_id, 0) + 1
        for disguise_id, delta in deltas.items():
            self._adjust(disguise_id, delta)

    def replace(self, old: VaultEntry, new: VaultEntry) -> None:
        if old.entry_id != new.entry_id:
            raise DisguiseError("replace must keep the entry id")
        self.vault.replace(new)
        self.writes += 1
        self._undo.append(("replace", old))

    def delete(self, entry: VaultEntry) -> None:
        """Consume *entry*: decrement its disguise's live count now, but
        defer the physical vault delete to :meth:`commit`.

        A vault delete is a durable append (the tombstone); issuing it
        inside the open transaction puts it on disk *before* the commit
        it belongs to. A crash in that window leaves the disguise's
        history row alive while its entries are gone — the disguise
        becomes permanently irreversible (reveal aborts on the missing
        rows forever). Found by the deterministic simulation harness.
        """
        self._doomed.append(entry)
        self._doomed_ids.add((entry.owner, entry.entry_id))
        self._adjust(entry.disguise_id, -1)

    def pending_delete(self, entry: VaultEntry) -> bool:
        """Whether *entry* was consumed earlier in this transaction.

        Deferred deletes stay visible in the vault until commit; readers
        that enumerate vault entries mid-transaction must skip them to
        keep the eager-delete semantics."""
        return (entry.owner, entry.entry_id) in self._doomed_ids

    def compensate(self) -> None:
        """Undo every journaled vault write, newest first.

        Deferred deletes need no compensation — nothing was written —
        they are simply dropped."""
        for action, entry in reversed(self._undo):
            if action == "put":
                self.vault.delete(entry.owner, [entry.entry_id])
            else:  # replaced — restore the old entry
                self.vault.replace(entry)
        self._undo.clear()
        self._doomed.clear()
        self._doomed_ids.clear()

    def commit(self, barrier=None) -> None:
        """Finish the transaction's vault writes after the db commit.

        *barrier* (e.g. ``Database.redo_barrier``) is called first when
        there are deferred deletes, making the commit durable before the
        tombstones land; the crash ordering is then always safe:
        entries-present/record-active (re-run cleanly) or
        entries-present/record-inactive (swept at engine construction) —
        never entries-gone/record-active.
        """
        if self._doomed:
            if barrier is not None:
                barrier()
            by_owner: dict[Any, list[int]] = {}
            for entry in self._doomed:
                by_owner.setdefault(entry.owner, []).append(entry.entry_id)
            for owner, ids in by_owner.items():
                self.vault.delete(owner, ids)
            self._doomed.clear()
            self._doomed_ids.clear()
        self._undo.clear()

    def discard(self) -> None:
        self._undo.clear()
        self._doomed.clear()
        self._doomed_ids.clear()


def _in_list(column: str, values: list[Any]) -> InList:
    return InList(ColumnRef(column), tuple(Literal(value) for value in values))


@dataclass
class ReverseOutcome:
    """What reversing one entry did."""

    status: str  # "restored" | "missing" | "stale"
    placeholder_deleted: bool = False


class OpExecutor:
    """Executes and reverses physical operations for one engine."""

    def __init__(
        self,
        db: Database,
        schema: Schema | None = None,
        registry: "PlaceholderRegistry | None" = None,
    ) -> None:
        self.db = db
        self.registry = registry
        # While True, row updates skip immediate FK checks. Reveal sets it:
        # unwinding chains passes through transient states (a restored FK
        # whose parent reappears later in the same transaction); a final
        # soundness gate re-validates every touched row before commit.
        self.defer_fk = False

    @property
    def schema(self) -> Schema:
        """The live schema — read through the database so schema evolution
        (which replaces ``db.schema``) is immediately visible here."""
        return self.db.schema

    def is_placeholder(self, table: str, pk: Any) -> bool:
        return self.registry is not None and self.registry.is_placeholder(table, pk)

    # -- forward operations ------------------------------------------------------

    def do_modify(
        self,
        table: str,
        row: dict[str, Any],
        column: str,
        new_value: Any,
    ) -> tuple[Any, Any]:
        """Rewrite one column; returns (old, new) as stored."""
        schema = self.db.table(table).schema
        pk = row[schema.primary_key]
        old_value = row[column]
        updated = self.db.update_by_pk(
            table, pk, {column: new_value}, enforce_fk=not self.defer_fk
        )
        return old_value, updated[column]

    def do_modify_many(
        self,
        table: str,
        rows: list[Any],
        column: str,
        new_values: list[Any],
    ) -> list[tuple[Any, Any]]:
        """Rewrite one column on many rows with ONE batched statement.

        Returns ``(old, new)`` per row, as stored.
        """
        schema = self.db.table(table).schema
        pk_col = schema.primary_key
        updates = [
            (row[pk_col], {column: value}) for row, value in zip(rows, new_values)
        ]
        new_rows = self.db.update_many(
            table, updates, enforce_fk=not self.defer_fk
        )
        return [
            (row[column], new[column]) for row, new in zip(rows, new_rows)
        ]

    def do_decorrelate(
        self,
        table: str,
        row: dict[str, Any],
        fk_column: str,
        factory: PlaceholderFactory,
        parent_disguise: TableDisguise,
    ) -> tuple[Any, Any, str, Any]:
        """Repoint *fk_column* at a fresh placeholder.

        Returns (old_fk, new_fk, placeholder_table, placeholder_pk).
        """
        table_schema = self.db.table(table).schema
        fk = table_schema.foreign_key_for(fk_column)
        if fk is None:
            raise SpecError(f"{table}.{fk_column} is not a foreign key")
        placeholder = factory.build(fk.parent_table, parent_disguise)
        parent_pk_col = self.db.table(fk.parent_table).schema.primary_key
        new_fk = placeholder[parent_pk_col]
        old_fk = row[fk_column]
        pk = row[table_schema.primary_key]
        self.db.update_by_pk(
            table, pk, {fk_column: new_fk}, enforce_fk=not self.defer_fk
        )
        return old_fk, new_fk, fk.parent_table, new_fk

    def do_decorrelate_many(
        self,
        table: str,
        rows: list[Any],
        fk_column: str,
        factory: PlaceholderFactory,
        parent_disguise: TableDisguise,
    ) -> list[tuple[Any, Any, str, Any]]:
        """Repoint *fk_column* of many rows at fresh placeholders, batched.

        One batched insert creates all placeholders and one batched update
        repoints all foreign keys; each row still gets its own placeholder
        (sharing one would re-correlate the rows with each other).
        """
        table_schema = self.db.table(table).schema
        fk = table_schema.foreign_key_for(fk_column)
        if fk is None:
            raise SpecError(f"{table}.{fk_column} is not a foreign key")
        placeholders = factory.build_many(fk.parent_table, parent_disguise, len(rows))
        parent_pk_col = self.db.table(fk.parent_table).schema.primary_key
        pk_col = table_schema.primary_key
        updates = [
            (row[pk_col], {fk_column: placeholder[parent_pk_col]})
            for row, placeholder in zip(rows, placeholders)
        ]
        self.db.update_many(table, updates, enforce_fk=not self.defer_fk)
        return [
            (
                row[fk_column],
                placeholder[parent_pk_col],
                fk.parent_table,
                placeholder[parent_pk_col],
            )
            for row, placeholder in zip(rows, placeholders)
        ]

    def collect_removal_set(self, table: str, pk: Any) -> list[tuple[str, dict[str, Any], str]]:
        """The rows deleting (table, pk) will affect, children first.

        Each item is ``(table, row, action)`` where action is ``"remove"``
        for the row itself and for CASCADE children, or ``"setnull:<col>"``
        for SET NULL children. The engine vaults each affected row so the
        removal is fully reversible — a plain SQL cascade would lose them.
        RESTRICT children are *not* collected; the delete will fail and
        surface the spec gap, as intended.
        """
        out: list[tuple[str, dict[str, Any], str]] = []
        self._collect_removal(table, pk, out, seen=set())
        return out

    def _collect_removal(
        self,
        table: str,
        pk: Any,
        out: list[tuple[str, dict[str, Any], str]],
        seen: set[tuple[str, Any]],
    ) -> None:
        if (table, pk) in seen:
            return
        seen.add((table, pk))
        row = self.db.get(table, pk)
        if row is None:
            return
        for child_schema, fk in self.schema.referencing(table):
            child_rows = self.db.select(
                child_schema.name, f"{fk.column} = $V", {"V": pk}
            )
            for child_row in child_rows:
                if fk.on_delete is FKAction.CASCADE:
                    self._collect_removal(
                        child_schema.name, child_row[child_schema.primary_key], out, seen
                    )
                elif fk.on_delete is FKAction.SET_NULL:
                    out.append((child_schema.name, child_row, f"setnull:{fk.column}"))
                # RESTRICT: leave it; the delete will raise if the spec
                # failed to address the child table.
        out.append((table, row, "remove"))

    def collect_removal_set_many(
        self, table: str, pks: list[Any]
    ) -> list[tuple[str, Any, str]]:
        """Removal sets for many roots at once, children first.

        Same contract as :meth:`collect_removal_set`, but the FK graph is
        walked level-by-level with one IN-list select per referencing table
        per level (index-accelerated by the planner), so collecting N roots
        issues O(depth × tables) statements instead of O(N). Rows affected
        by several roots appear once; all removes of one table are
        contiguous, which lets the caller batch the deletes.
        """
        out: list[tuple[str, Any, str]] = []
        self._collect_removal_batch(table, pks, out, seen=set())
        return out

    def _collect_removal_batch(
        self,
        table: str,
        pks: list[Any],
        out: list[tuple[str, Any, str]],
        seen: set[tuple[str, Any]],
    ) -> None:
        fresh = [pk for pk in pks if (table, pk) not in seen]
        if not fresh:
            return
        seen.update((table, pk) for pk in fresh)
        pk_col = self.db.table(table).schema.primary_key
        rows = self.db.select(table, _in_list(pk_col, fresh))
        if not rows:
            return
        live = [row[pk_col] for row in rows]
        for child_schema, fk in self.schema.referencing(table):
            child_rows = self.db.select(
                child_schema.name, _in_list(fk.column, live)
            )
            if not child_rows:
                continue
            if fk.on_delete is FKAction.CASCADE:
                self._collect_removal_batch(
                    child_schema.name,
                    [row[child_schema.primary_key] for row in child_rows],
                    out,
                    seen,
                )
            elif fk.on_delete is FKAction.SET_NULL:
                out.extend(
                    (child_schema.name, row, f"setnull:{fk.column}")
                    for row in child_rows
                )
        out.extend((table, row, "remove") for row in rows)

    def delete_placeholder_if_unreferenced(self, table: str, pk: Any) -> bool:
        """Garbage-collect a placeholder row once nothing points at it."""
        for child_schema, fk in self.schema.referencing(table):
            self.db.stats.selects += 1
            if self.db.table(child_schema.name).referencing_rows(
                fk.column, pk, sort=False
            ):
                return False
        if self.db.get(table, pk) is None:
            return False
        self.db.delete_by_pk(table, pk)
        if self.registry is not None:
            self.registry.remove(table, pk)
        return True

    # -- reversal ("reveal functions") ------------------------------------------------

    def reverse_entry(self, entry: VaultEntry) -> ReverseOutcome:
        """Apply the reveal function stored in *entry*.

        * remove       -> reinsert the original row
        * decorrelate  -> restore the original foreign key, GC the placeholder
        * modify       -> restore the original column value

        Rows that no longer exist (removed by a later disguise) yield
        ``missing``; decorrelations whose current FK is not the entry's
        recorded placeholder yield ``stale`` (an intervening change the
        caller must have reversed first — chains are reversed newest-first,
        so a stale result signals entry corruption, not normal flow).
        """
        if entry.op == OP_REMOVE:
            # Deferred FK check: the row may reference a parent that a
            # still-active disguise removed. Reveal re-applies that disguise
            # to the reinserted row afterwards (which removes it again) and
            # validates all surviving reinsertions before committing.
            self.db.insert(entry.table, entry.removed_row, enforce_fk=False)
            return ReverseOutcome("restored")
        row = self.db.get(entry.table, entry.pk)
        if row is None:
            return ReverseOutcome("missing")
        if entry.op == OP_DECORRELATE:
            if row[entry.column] != entry.new_value:
                return ReverseOutcome("stale")
            self.db.update_by_pk(
                entry.table,
                entry.pk,
                {entry.column: entry.old_value},
                enforce_fk=not self.defer_fk,
            )
            deleted = self.delete_placeholder_if_unreferenced(
                entry.placeholder_table, entry.placeholder_pk
            )
            return ReverseOutcome("restored", placeholder_deleted=deleted)
        if entry.op == OP_MODIFY:
            self.db.update_by_pk(
                entry.table,
                entry.pk,
                {entry.column: entry.old_value},
                enforce_fk=not self.defer_fk,
            )
            return ReverseOutcome("restored")
        raise DisguiseError(f"cannot reverse op {entry.op!r}")

    # -- re-execution after temporary reversal ------------------------------------------

    def reexecute_entry(
        self,
        entry: VaultEntry,
        spec: DisguiseSpec,
        factory: PlaceholderFactory,
        seq: int,
    ) -> VaultEntry | None:
        """Redo *entry*'s operation against current state.

        Used when composition or reveal temporarily reversed the entry and
        the owning disguise must re-assert itself. Returns the updated
        entry (new payload, new seq) to store via ``replace``, or None if
        the row no longer exists (the entry should then be deleted — the
        disguise's effect on that row is moot).
        """
        row = self.db.get(entry.table, entry.pk)
        if row is None:
            return None
        table_disguise = spec.table_disguise(entry.table)
        if entry.op == OP_DECORRELATE:
            fk = self.db.table(entry.table).schema.foreign_key_for(entry.column)
            if fk is None or table_disguise is None:
                raise DisguiseError(
                    f"cannot re-execute decorrelation for {entry.table}.{entry.column}"
                )
            parent_disguise = spec.table_disguise(fk.parent_table)
            if parent_disguise is None:
                raise DisguiseError(
                    f"spec {spec.name!r} has no placeholder recipe for {fk.parent_table!r}"
                )
            old_fk, new_fk, placeholder_table, placeholder_pk = self.do_decorrelate(
                entry.table, row, entry.column, factory, parent_disguise
            )
            return entry.with_payload(
                seq,
                old=old_fk,
                new=new_fk,
                placeholder_table=placeholder_table,
                placeholder_pk=placeholder_pk,
            )
        if entry.op == OP_MODIFY:
            fn = _modifier_for(spec, entry.table, entry.column)
            old_value, new_value = self.do_modify(
                entry.table, row, entry.column, fn(row[entry.column])
            )
            return entry.with_payload(seq, old=old_value, new=new_value)
        if entry.op == OP_REMOVE:
            # Only this row: when the removal originally cascaded, each
            # affected child has its own entry in the chain and is
            # re-executed separately (children carry smaller seqs, so
            # ascending re-application deletes them first). Referencing
            # rows mid-chain are fixed by later reveal phases, so FK
            # resolution is deferred under reveal.
            self.db.delete_by_pk(entry.table, entry.pk, enforce_fk=not self.defer_fk)
            return entry.with_payload(seq, row=row)
        raise DisguiseError(f"cannot re-execute op {entry.op!r}")


def _modifier_for(spec: DisguiseSpec, table: str, column: str):
    """Find the Modify closure a spec declares for (table, column)."""
    from repro.spec.transform import Modify

    table_disguise = spec.table_disguise(table)
    if table_disguise is not None:
        for transformation in table_disguise.transformations:
            if isinstance(transformation, Modify) and transformation.column == column:
                return transformation.fn
    raise DisguiseError(
        f"spec {spec.name!r} declares no Modify for {table}.{column}; "
        f"cannot re-execute"
    )
