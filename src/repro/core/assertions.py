"""Privacy-goal assertions over post-disguise state (paper §7).

"Perhaps assertions could be arbitrary predicates over the end-state,
which the tool would check after disguise application to ensure the state
adheres to the application's privacy goals; if these checks fail, the tool
would revert the disguise and try again with a different mechanism until
it passes the checks, or notify the developer of an error."

:class:`PrivacyAssertion` expresses goals like "user no longer has any
reviews" as a count constraint over a predicate, or as an arbitrary
callable over the database. The engine checks assertions inside the
disguise transaction; failure handling is selected by ``on_failure``:

* ``"revert"`` — roll back the disguise and raise (the paper's default).
* ``"retry"``  — roll back, escalate mechanisms (enable composition, then
  disable the redundancy optimizer), and re-apply; raise if every
  escalation still fails.
* ``"notify"`` — keep the disguise, record the failures in the report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.errors import SpecError
from repro.storage.database import Database
from repro.storage.predicate import Predicate
from repro.storage.sql import parse_where

__all__ = ["PrivacyAssertion", "check_assertions"]

_COMPARATORS: dict[str, Callable[[int, int], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class PrivacyAssertion:
    """One end-state predicate.

    Count form: ``PrivacyAssertion("no reviews", table="Review",
    pred="contactId = $UID")`` asserts the matching row count satisfies
    ``comparator expected`` (default ``== 0``).

    Callable form: ``PrivacyAssertion("custom", check=fn)`` where
    ``fn(db, params) -> bool``.
    """

    name: str
    table: str | None = None
    pred: str | Predicate | None = None
    expected: int = 0
    comparator: str = "=="
    check: Callable[[Database, Mapping[str, Any]], bool] | None = None

    def __post_init__(self) -> None:
        if self.comparator not in _COMPARATORS:
            raise SpecError(f"unknown comparator {self.comparator!r}")
        if self.check is None and (self.table is None or self.pred is None):
            raise SpecError(
                f"assertion {self.name!r} needs either (table, pred) or a check callable"
            )

    def holds(self, db: Database, params: Mapping[str, Any]) -> bool:
        """Evaluate against the (in-transaction) database state."""
        if self.check is not None:
            return bool(self.check(db, params))
        predicate = parse_where(self.pred)
        count = db.count(self.table, predicate, params)
        return _COMPARATORS[self.comparator](count, self.expected)

    def describe(self) -> str:
        if self.check is not None:
            return f"{self.name} (custom check)"
        return (
            f"{self.name}: count({self.table} where {self.pred}) "
            f"{self.comparator} {self.expected}"
        )


def check_assertions(
    assertions: tuple[PrivacyAssertion, ...] | list[PrivacyAssertion],
    db: Database,
    params: Mapping[str, Any],
) -> list[str]:
    """Evaluate all assertions; returns descriptions of the failures."""
    failures = []
    for assertion in assertions:
        if not assertion.holds(db, params):
            failures.append(assertion.describe())
    return failures
