"""Disguise reversal (paper §4.2, "Reverting disguises").

Revealing disguise D permanently restores the data D transformed — but
"other disguises may have affected the database contents in the interval
between the original disguising and the explicit reveal". The engine
therefore:

1. Collects D's vault entries, plus every *later* entry (any active
   disguise) on the same rows — these form per-row chains of physical
   changes.
2. Reverses all involved entries newest-first: later disguises' changes
   unwind temporarily, then D's unwind permanently (D's entries are
   consumed).
3. Re-executes the later entries oldest-first, so the other disguises
   re-assert themselves on the revealed data with fresh placeholders and
   updated vault entries.
4. Re-applies, at spec level, every other active disguise to the rows D's
   reversal restored — excluding, per disguise, rows it just re-asserted
   through a chain entry in step 3. This is the paper's "re-applies
   disguises from the relevant log interval to the revealed data"
   (reversal of GDPR must not reintroduce identifiable reviews if
   ConfAnon has occurred).
5. Re-removes restored rows whose parent another active disguise removed
   (the cascade the parent's removal would have performed had this row
   existed then), attributing the removal to that disguise so its own
   later reveal restores the row. Any dangling reference that survives
   all of this aborts the reveal.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.core.apply import SpecRunner
from repro.core.history import DisguiseHistory, HistoryRecord
from repro.core.physical import OpExecutor, PlaceholderFactory, VaultJournal
from repro.core.stats import DisguiseReport, RevealReport
from repro.errors import DisguiseError, VaultError
from repro.spec.disguise import DisguiseSpec, USER_PARAM
from repro.vault.base import VaultStore
from repro.vault.entry import OP_DECORRELATE, OP_MODIFY, OP_REMOVE, VaultEntry

__all__ = ["run_reveal"]


def run_reveal(
    executor: OpExecutor,
    history: DisguiseHistory,
    vault: VaultStore,
    journal: VaultJournal,
    factory: PlaceholderFactory,
    spec_lookup: Callable[[int], DisguiseSpec],
    spec_by_name: Callable[[str], DisguiseSpec],
    record: HistoryRecord,
    report: RevealReport,
) -> None:
    """Reverse disguise *record* inside the engine's open transaction."""
    if not record.reversible:
        raise DisguiseError(
            f"disguise {record.did} ({record.name}) was applied irreversibly"
        )
    did = record.did
    d_entries, pool = _gather_entries(vault, record)
    if not d_entries:
        if record.entries == 0:
            # The disguise never changed anything (e.g. the user's data was
            # already disguised); revealing it is a no-op.
            history.deactivate(did)
            return
        raise DisguiseError(
            f"disguise {did} ({record.name}) wrote {record.entries} vault "
            f"entries but none remain (expired?); it is no longer reversible"
        )

    # Per-row chains: a later entry is involved if it touches a row D
    # touched and came after D's first change to that row.
    cutoff: dict[tuple[str, Any], int] = {}
    for entry in d_entries:
        key = (entry.table, entry.pk)
        cutoff[key] = min(cutoff.get(key, entry.seq), entry.seq)
    involved_later = [
        entry
        for entry in pool
        if (entry.table, entry.pk) in cutoff
        and entry.seq > cutoff[(entry.table, entry.pk)]
    ]

    # Phases 1+2: reverse everything involved, newest first. FK checks are
    # deferred for the duration: chains pass through transient states (a
    # restored FK whose parent only reappears, or whose child is only
    # re-removed, later in this same transaction); the soundness gate at
    # the end re-validates every touched row.
    executor.defer_fk = True
    restored: dict[str, list[Any]] = {}
    reinserted: dict[str, list[Any]] = {}
    for entry in sorted(
        d_entries + involved_later, key=lambda e: e.seq, reverse=True
    ):
        outcome = executor.reverse_entry(entry)
        is_mine = entry.disguise_id == did
        if outcome.status == "restored":
            if is_mine:
                restored.setdefault(entry.table, []).append(entry.pk)
            if entry.op == OP_REMOVE:
                report.rows_reinserted += int(is_mine)
                if is_mine:
                    reinserted.setdefault(entry.table, []).append(entry.pk)
            elif entry.op == OP_DECORRELATE:
                report.fks_restored += int(is_mine)
                report.placeholders_deleted += int(outcome.placeholder_deleted)
            elif entry.op == OP_MODIFY:
                report.values_restored += int(is_mine)
            if not is_mine:
                report.chain_reversed += 1
        elif outcome.status == "missing" and is_mine and entry.op in (
            OP_DECORRELATE,
            OP_MODIFY,
        ):
            # The row only exists inside another active disguise's
            # REMOVE payload; apply the reveal function to that vaulted
            # copy, so the row comes back correctly when *that*
            # disguise is revealed.
            if _restore_into_holder(
                executor, history, vault, journal, entry, did
            ):
                if entry.op == OP_DECORRELATE:
                    report.fks_restored += 1
                else:
                    report.values_restored += 1
        if is_mine:
            journal.delete(entry)
            report.entries_consumed += 1

    # Phase 3: later entries re-assert themselves, oldest first.
    # Rows they cover are excluded from that disguise's spec re-application.
    reasserted: dict[int, set[tuple[str, Any]]] = {}
    re_removed: list[tuple[str, Any]] = []
    for entry in sorted(involved_later, key=lambda e: e.seq):
        owning_spec = spec_lookup(entry.disguise_id)
        new_entry = executor.reexecute_entry(
            entry, owning_spec, factory, history.next_seq()
        )
        if new_entry is None:
            journal.delete(entry)
        else:
            journal.replace(entry, new_entry)
            report.chain_reapplied += 1
            if new_entry.op == OP_REMOVE:
                re_removed.append((entry.table, entry.pk))
        reasserted.setdefault(entry.disguise_id, set()).add((entry.table, entry.pk))

    # Phase 4: spec-level re-application of every other active disguise to
    # the restored rows it has no chain entry for.
    if restored:
        # Dedupe pk lists (a row can appear via several of D's entries).
        for table in restored:
            restored[table] = list(dict.fromkeys(restored[table]))
        for other in history.records(active_only=True):
            if other.did == did:
                continue
            spec = spec_by_name(other.name)
            excluded = reasserted.get(other.did, set())
            restrict = {
                table: [pk for pk in pks if (table, pk) not in excluded]
                for table, pks in restored.items()
                if spec.table_disguise(table) is not None
            }
            if not any(restrict.values()):
                continue
            params = {USER_PARAM: other.uid} if other.uid is not None else {}
            sub_report = DisguiseReport(
                disguise_id=other.did, name=other.name, uid=other.uid
            )
            runner = SpecRunner(
                executor=executor,
                history=history,
                journal=journal,
                factory=factory,
                spec=spec,
                did=other.did,
                epoch=other.epoch,
                uid=other.uid,
                params=params,
                reversible=other.reversible,
                report=sub_report,
            )
            runner.run(restrict=restrict)
            report.spec_reapplied += sub_report.rows_touched

    # Phase 5: cascade re-removal. A restored row whose parent an active
    # disguise removed would have been cascaded away had it existed at
    # that disguise's application time; perform that cascade now,
    # attributed to the removing disguise.
    _cascade_orphans(
        executor, history, vault, journal, restored, did, report
    )

    executor.defer_fk = False

    # Final soundness gate: the whole reveal ran with deferred FK checks,
    # so every row it touched must now be clean.
    touched: set[tuple[str, Any]] = set()
    for table, pks in restored.items():
        touched.update((table, pk) for pk in pks)
    touched.update((entry.table, entry.pk) for entry in involved_later)
    dangling = []
    for table, pk in sorted(touched, key=repr):
        dangling.extend(executor.db.check_row_fks(table, pk))
    # Rows re-removed in phase 3 had incoming-reference resolution deferred;
    # any row still pointing at them now is a dangle.
    for table, pk in re_removed:
        if executor.db.get(table, pk) is not None:
            continue  # reinserted again later in the chain — fine
        for child_schema, fk in executor.schema.referencing(table):
            for child_row in executor.db.table(child_schema.name).referencing_rows(
                fk.column, pk
            ):
                dangling.append(
                    f"{child_schema.name}.{fk.column}={pk!r} references "
                    f"re-removed {table} row"
                )
    if dangling:
        raise DisguiseError(
            f"reveal of disguise {did} would break referential integrity "
            f"({len(dangling)} dangling reference(s), e.g. {dangling[0]}); "
            f"an active disguise removed a parent row and its spec does not "
            f"cover the revealed child"
        )

    history.deactivate(did)
    history.checkpoint(did)


def _cascade_orphans(
    executor: OpExecutor,
    history: DisguiseHistory,
    vault: VaultStore,
    journal: VaultJournal,
    restored: dict[str, list[Any]],
    revealing_did: int,
    report: RevealReport,
) -> None:
    db = executor.db
    for table, pks in restored.items():
        for pk in pks:
            # A view avoids copying the whole row just to probe its FK
            # columns; the dict() copy below happens only for the rare row
            # that actually gets re-removed into a vault payload.
            row = db.table(table).view(pk)
            if row is None:
                continue
            schema = db.table(table).schema
            for fk in schema.foreign_keys:
                value = row[fk.column]
                if value is None or db.table(fk.parent_table).rid_of(value) is not None:
                    continue
                remover = _find_remover(
                    vault, history, journal, fk.parent_table, value, revealing_did
                )
                if remover is None:
                    continue  # the final soundness gate will report it
                entry = VaultEntry(
                    entry_id=history.next_entry_id(),
                    disguise_id=remover.did,
                    seq=history.next_seq(),
                    epoch=remover.epoch,
                    owner=remover.uid,
                    table=table,
                    pk=pk,
                    op=OP_REMOVE,
                    payload={"row": dict(row)},
                )
                journal.put(entry)
                db.delete_by_pk(table, pk)
                report.spec_reapplied += 1
                break  # row is gone; no need to examine its other FKs


def _find_remover(
    vault: VaultStore,
    history: DisguiseHistory,
    journal: VaultJournal,
    table: str,
    pk: Any,
    revealing_did: int,
) -> HistoryRecord | None:
    """The active disguise whose vault records removing (table, pk)."""
    found = _find_holder_entry(vault, history, journal, table, pk, revealing_did)
    return found[0] if found is not None else None


def _find_holder_entry(
    vault: VaultStore,
    history: DisguiseHistory,
    journal: VaultJournal,
    table: str,
    pk: Any,
    revealing_did: int,
) -> tuple[HistoryRecord, VaultEntry] | None:
    """The active (record, REMOVE entry) holding the vaulted copy of a row."""
    for candidate in history.records(active_only=True):
        if candidate.did == revealing_did:
            continue
        owners = [candidate.uid] if candidate.uid is not None else [None]
        for owner in owners:
            try:
                entries = vault.entries_for(
                    owner, disguise_id=candidate.did, table=table, op=OP_REMOVE
                )
            except VaultError:
                continue  # locked per-user vault: cannot attribute through it
            for entry in entries:
                # Vault deletes are deferred to post-commit, so an entry
                # consumed earlier in this reveal is still enumerable;
                # it no longer holds anything.
                if entry.pk == pk and not journal.pending_delete(entry):
                    return candidate, entry
    return None


def _restore_into_holder(
    executor: OpExecutor,
    history: DisguiseHistory,
    vault: VaultStore,
    journal: VaultJournal,
    entry: VaultEntry,
    revealing_did: int,
) -> bool:
    """Apply *entry*'s reveal function to the vaulted copy of its row.

    The row was removed by another active disguise after *entry* disguised
    it; the only live copy sits in that disguise's REMOVE payload. Editing
    the payload makes the eventual reveal of the remover reinsert the row
    in its true pre-disguise state — e.g. a comment decorrelated by a
    scrub, then cascaded away by a paper deletion, comes back pointing at
    its real author once both disguises are reversed.
    """
    found = _find_holder_entry(
        vault, history, journal, entry.table, entry.pk, revealing_did
    )
    if found is None:
        return False
    _, holder = found
    row = holder.removed_row
    if row.get(entry.column) != entry.new_value:
        return False  # an intervening change we do not own; leave it
    row[entry.column] = entry.old_value
    updated = holder.with_payload(holder.seq, row=row)
    journal.replace(holder, updated)
    if entry.op == OP_DECORRELATE:
        executor.delete_placeholder_if_unreferenced(
            entry.placeholder_table, entry.placeholder_pk
        )
    return True


def _gather_entries(
    vault: VaultStore, record: HistoryRecord
) -> tuple[list[VaultEntry], list[VaultEntry]]:
    """D's own entries and the pool of other entries to chain against.

    A user disguise needs only that user's vault (plus the global one); a
    global disguise needs every vault — which per-user encrypted
    deployments refuse unless unlocked, reproducing the paper's point that
    complete ConfAnon reversal is infeasible there (§4.2).
    """
    if record.uid is not None:
        mine = vault.entries_for(record.uid, disguise_id=record.did)
        pool = [
            entry
            for entry in vault.entries_for(record.uid) + vault.entries_for(None)
            if entry.disguise_id != record.did
        ]
        return mine, pool
    every = vault.all_entries()
    mine = [entry for entry in every if entry.disguise_id == record.did]
    pool = [entry for entry in every if entry.disguise_id != record.did]
    return mine, pool
