"""The disguising tool's public API (the Python "Edna").

"Applications invoke an external data disguising tool's API to apply
disguises; the tool interprets the specification and applies the necessary
physical changes to the database" (paper §4). :class:`Disguiser` is that
tool: construct it over an application :class:`~repro.storage.Database`
and a vault store, register disguise specs, then ``apply`` and ``reveal``.

Each apply/reveal runs in one database transaction (§6: "Edna currently
applies these changes in one large SQL transaction"), with journaled vault
writes compensated if the transaction aborts.
"""

from __future__ import annotations

import random
import time
from typing import Any, Iterable, Mapping

from repro.core.apply import SpecRunner
from repro.core.assertions import PrivacyAssertion, check_assertions
from repro.core.compose import reapply_recorrelated, recorrelate_for_user
from repro.core.history import DisguiseHistory
from repro.core.physical import (
    OpExecutor,
    PlaceholderFactory,
    PlaceholderRegistry,
    VaultJournal,
)
from repro.core.reveal import run_reveal
from repro.core.stats import DisguiseReport, RevealReport
from repro.errors import AssertionFailure, DisguiseError, VaultError
from repro.obs.trace import TRACER as _TRACER
from repro.spec.analysis import validate_spec
from repro.spec.disguise import DisguiseSpec, USER_PARAM
from repro.storage.database import Database
from repro.vault.base import VaultStore
from repro.vault.memory_vault import MemoryVault

__all__ = ["Disguiser"]


class Disguiser:
    """Applies, composes, and reveals data disguises on one database."""

    def __init__(
        self,
        db: Database,
        vault: VaultStore | None = None,
        seed: int = 0,
        validate_specs: bool = True,
    ) -> None:
        self.db = db
        self.vault = vault if vault is not None else MemoryVault()
        # Surface the vault's counters through the database's metrics
        # registry: one Database.metrics() call reports the whole engine.
        if hasattr(self.vault, "register_metrics"):
            self.vault.register_metrics(db.obs)
        self.history = DisguiseHistory(db)
        # Crash recovery: stranded (pre-commit) vault entries must never
        # have their disguise/entry ids re-issued — see resume_from_vault.
        self.history.resume_from_vault(self.vault)
        self._sweep_consumed_entries()
        self.registry = PlaceholderRegistry(db)
        self.executor = OpExecutor(db, db.schema, self.registry)
        self.rng = random.Random(seed)
        self.validate_specs = validate_specs
        self._specs: dict[str, DisguiseSpec] = {}

    def _sweep_consumed_entries(self) -> None:
        """Delete vault entries of disguises that were already revealed.

        Reveal commits the history flip first and lands the physical
        vault deletes only after that commit is durable (see
        :meth:`VaultJournal.commit`); a crash between the two strands
        the consumed entries on disk. They are dead — the committed
        reveal already restored the data — so finish the deletion here,
        keeping the vault an exact mirror of the active history.
        """
        try:
            owners = self.vault.owners()
        except (NotImplementedError, VaultError):
            return  # non-enumerable deployments (encrypted, third-party)
        inactive = {
            record.did for record in self.history.records() if not record.active
        }
        if not inactive:
            return
        for owner in owners:
            stale = [
                entry.entry_id
                for entry in self.vault.entries_for(owner)
                if entry.disguise_id in inactive
            ]
            if stale:
                self.vault.delete(owner, stale)

    def share(self, seed: int | None = None) -> "Disguiser":
        """A worker-private engine over the same database and vault.

        The service runs one :class:`Disguiser` per worker thread: the
        database, vault, history, placeholder registry, and spec registry
        are shared (each already safe under the service's locks), while
        the :class:`OpExecutor` and RNG are private — the executor's
        ``defer_fk`` toggles mid-apply, and the RNG must not interleave
        draws across concurrent disguises.
        """
        clone = object.__new__(Disguiser)
        clone.db = self.db
        clone.vault = self.vault
        clone.history = self.history
        clone.registry = self.registry
        clone.executor = OpExecutor(self.db, self.db.schema, self.registry)
        clone.rng = random.Random(self.rng.randrange(2**63) if seed is None else seed)
        clone.validate_specs = self.validate_specs
        clone._specs = self._specs
        return clone

    # -- spec registry -----------------------------------------------------------

    def register(self, spec: DisguiseSpec) -> list:
        """Register a disguise spec; returns validation warnings.

        Registration is required before ``apply`` — reveal needs the spec
        object to re-execute operations, so specs must be resolvable by
        name for the lifetime of their disguises.
        """
        warnings = []
        if self.validate_specs:
            warnings = validate_spec(spec, self.db.schema)
        self._specs[spec.name] = spec
        return warnings

    def spec(self, name: str) -> DisguiseSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise DisguiseError(f"no registered disguise spec named {name!r}") from None

    def _spec_for_disguise(self, did: int) -> DisguiseSpec:
        return self.spec(self.history.get(did).name)

    def _resolve(self, spec: DisguiseSpec | str) -> DisguiseSpec:
        if isinstance(spec, str):
            return self.spec(spec)
        if spec.name not in self._specs:
            self.register(spec)
        return spec

    # -- apply ---------------------------------------------------------------------

    def apply(
        self,
        spec: DisguiseSpec | str,
        uid: Any = None,
        reversible: bool = True,
        compose: bool = True,
        optimize: bool = True,
        assertions: Iterable[PrivacyAssertion] = (),
        on_assertion_failure: str = "revert",
        check_integrity: bool = False,
        job: str | None = None,
    ) -> DisguiseReport:
        """Apply a disguise; returns a :class:`DisguiseReport`.

        ``uid`` binds the spec's ``$UID`` parameter (required for user
        disguises, forbidden for global ones). ``compose`` enables vault
        recorrelation against earlier disguises; ``optimize`` enables the
        redundant-decorrelation skip. ``reversible=False`` writes no vault
        entries, making the disguise permanent. Assertions are checked
        in-transaction; ``on_assertion_failure`` is ``"revert"``,
        ``"retry"`` (escalate mechanisms), or ``"notify"``. ``job`` is an
        optional service job token recorded transactionally with the
        apply, so a crash-induced re-run can detect the first run's
        durable effects and skip re-applying.
        """
        resolved = self._resolve(spec)
        if on_assertion_failure not in ("revert", "retry", "notify"):
            raise DisguiseError(
                f"unknown on_assertion_failure {on_assertion_failure!r}"
            )
        assertion_list = list(assertions)
        attempts = [(compose, optimize)]
        if on_assertion_failure == "retry":
            # Escalation ladder (§7 "try again with a different mechanism"):
            # enable composition if it was off, then disable the optimizer
            # so every original value is recorrelated.
            for escalation in ((True, optimize), (True, False)):
                if escalation not in attempts:
                    attempts.append(escalation)
        last_failures: list[str] = []
        for attempt_compose, attempt_optimize in attempts:
            try:
                # One span per attempt: each is its own transaction, and a
                # retry's escalated parameters show up as distinct attrs.
                with _TRACER.span(
                    "disguise.apply",
                    spec=resolved.name,
                    uid=uid,
                    compose=attempt_compose,
                    optimize=attempt_optimize,
                ):
                    return self._apply_once(
                        resolved,
                        uid,
                        reversible,
                        attempt_compose,
                        attempt_optimize,
                        assertion_list,
                        on_assertion_failure,
                        check_integrity,
                        job,
                    )
            except AssertionFailure as failure:
                last_failures = failure.args[1] if len(failure.args) > 1 else []
                continue
        raise AssertionFailure(
            f"disguise {resolved.name!r} failed its privacy assertions after "
            f"{len(attempts)} attempt(s): {last_failures}",
            last_failures,
        )

    def _apply_once(
        self,
        spec: DisguiseSpec,
        uid: Any,
        reversible: bool,
        compose: bool,
        optimize: bool,
        assertions: list[PrivacyAssertion],
        on_assertion_failure: str,
        check_integrity: bool,
        job: str | None = None,
    ) -> DisguiseReport:
        if spec.is_user_disguise and uid is None:
            raise DisguiseError(
                f"disguise {spec.name!r} is parameterized by $UID; pass uid="
            )
        params: Mapping[str, Any] = {USER_PARAM: uid} if uid is not None else {}
        db_before = self.db.stats.snapshot()
        vault_before = self.vault.stats.snapshot()
        started = time.perf_counter()
        journal = VaultJournal(self.vault, self.history)
        self.db.begin()
        try:
            did = self.history.open(
                spec.name, uid, reversible, user_invoked=uid is not None
            )
            if _TRACER.enabled:
                current = _TRACER.current()
                if current is not None:
                    current.set("did", did)
            if job is not None:
                self.history.record_job(job, did)
            self.vault.note_disguise(did, user_invoked=uid is not None)
            factory = PlaceholderFactory(self.db, self.rng, self.registry, did)
            report = DisguiseReport(disguise_id=did, name=spec.name, uid=uid)
            recorrelated = []
            if compose and uid is not None:
                # Recorrelation may pass through transient states (restoring
                # a reference to a row an earlier disguise removed) that the
                # new disguise immediately re-handles; FK checks are deferred
                # until the recorrelated rows are re-validated below.
                self.executor.defer_fk = True
                recorrelated = recorrelate_for_user(
                    self.executor, self.vault, spec, uid, did, optimize, report
                )
                if not recorrelated:
                    self.executor.defer_fk = False
            runner = SpecRunner(
                executor=self.executor,
                history=self.history,
                journal=journal,
                factory=factory,
                spec=spec,
                did=did,
                epoch=did,
                uid=uid,
                params=params,
                reversible=reversible,
                report=report,
            )
            runner.run()
            if recorrelated:
                reapply_recorrelated(
                    self.executor,
                    self.history,
                    journal,
                    factory,
                    self._spec_for_disguise,
                    recorrelated,
                    report,
                )
                self.executor.defer_fk = False
                dangling = []
                seen_rows = set()
                for entry in recorrelated:
                    key = (entry.table, entry.pk)
                    if key not in seen_rows:
                        seen_rows.add(key)
                        dangling.extend(self.db.check_row_fks(entry.table, entry.pk))
                if dangling:
                    raise DisguiseError(
                        f"composing {spec.name!r} left {len(dangling)} dangling "
                        f"reference(s) (e.g. {dangling[0]}); the spec does not "
                        f"cover all recorrelated rows"
                    )
            failures = check_assertions(assertions, self.db, params)
            if failures:
                if on_assertion_failure == "notify":
                    report.assertion_failures = failures
                else:
                    raise AssertionFailure(
                        f"{spec.name}: {len(failures)} assertion(s) failed", failures
                    )
            if check_integrity:
                self.db.assert_integrity()
            self.history.checkpoint(did)
            self.db.commit()
        except BaseException:
            journal.compensate()
            self.db.rollback()
            raise
        finally:
            self.executor.defer_fk = False
        journal.commit(getattr(self.db, "redo_barrier", None))
        report.duration_s = time.perf_counter() - started
        report.db_stats = self.db.stats.delta(db_before)
        report.vault_stats = self.vault.stats.delta(vault_before)
        return report

    # -- reveal --------------------------------------------------------------------

    def reveal(self, did: int, check_integrity: bool = False) -> RevealReport:
        """Reverse a previously applied disguise (paper §4.2).

        Restores the data the disguise transformed, then re-applies the
        still-active disguises from the relevant log interval so revealed
        data respects them. The disguise's history record is deactivated
        and its vault entries consumed.
        """
        with _TRACER.span("disguise.reveal", did=did) as sp:
            record = self.history.get(did)
            if not record.active:
                raise DisguiseError(f"disguise {did} ({record.name}) is not active")
            sp.set("spec", record.name)
            sp.set("uid", record.uid)
            db_before = self.db.stats.snapshot()
            vault_before = self.vault.stats.snapshot()
            started = time.perf_counter()
            journal = VaultJournal(self.vault, self.history)
            factory = PlaceholderFactory(self.db, self.rng, self.registry, did)
            report = RevealReport(disguise_id=did, name=record.name, uid=record.uid)
            self.db.begin()
            try:
                run_reveal(
                    self.executor,
                    self.history,
                    self.vault,
                    journal,
                    factory,
                    self._spec_for_disguise,
                    self.spec,
                    record,
                    report,
                )
                if check_integrity:
                    self.db.assert_integrity()
                self.db.commit()
            except BaseException:
                journal.compensate()
                self.db.rollback()
                raise
            finally:
                self.executor.defer_fk = False
            journal.commit(getattr(self.db, "redo_barrier", None))
            report.duration_s = time.perf_counter() - started
            report.db_stats = self.db.stats.delta(db_before)
            report.vault_stats = self.vault.stats.delta(vault_before)
        return report

    # -- schema evolution ---------------------------------------------------------------

    def evolve_schema(self, change):
        """Apply a schema change across all three layers (paper §7).

        Order: the database first (``repro.storage.evolve``), then every
        reachable vault entry (so active disguises stay reversible), then
        each registered spec (renames are rewritten automatically; specs
        that reference a dropped column are reported for manual revision
        and left registered under their old definition).

        Returns a :class:`repro.core.migrate.MigrationReport`.
        """
        from repro.core.migrate import MigrationReport, migrate_spec, migrate_vault
        from repro.errors import SpecError
        from repro.storage.evolve import apply_change

        apply_change(self.db, change)
        report = MigrationReport(change=change.describe())
        migrate_vault(self.vault, change, report)
        for name, spec in list(self._specs.items()):
            try:
                migrated = migrate_spec(spec, change)
            except SpecError:
                report.unmigratable_specs.append(name)
                continue
            if migrated is not spec:
                self._specs[name] = migrated
                if migrated.to_text() != spec.to_text():
                    report.revised_specs.append(name)
        return report

    # -- introspection ----------------------------------------------------------------

    def explain(self, spec, uid=None, optimize: bool = True):
        """Dry-run a disguise: what would ``apply`` do? (paper §1, §7)

        Returns a :class:`repro.core.explain.DisguisePlan` without touching
        the database or the vault contents.
        """
        from repro.core.explain import explain as _explain

        return _explain(self, spec, uid=uid, optimize=optimize)

    def active_disguises(self):
        """History records of disguises currently in effect."""
        return self.history.records(active_only=True)
