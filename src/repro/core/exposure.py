"""Breach-exposure accounting: how much would a leak reveal? (paper §1-§2)

The paper motivates proactive disguising with breach risk: "a site might
scrub or anonymize its older contents to reduce the impact of a possible
later breach", and "inactive users' accounts and data can make a data
breach much worse". This module quantifies that impact so policies can be
evaluated: if the database leaked *right now*,

* how many **identifiable users** are in it (real accounts, not
  placeholders)?
* how many **PII cells** are readable (non-NULL declared-PII values on
  identifiable rows)?
* how many **linkable contributions** are there — rows whose user-table
  foreign key points at an identifiable user, i.e. content an attacker can
  attribute?

Disguises lower these numbers; reveals raise them. The decay/expiration
tests use the metric to show exposure falling monotonically through policy
stages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.storage.database import Database

__all__ = ["ExposureReport", "measure_exposure"]


@dataclass(frozen=True)
class ExposureReport:
    """Snapshot of what a breach of this database would reveal."""

    identifiable_users: int
    pii_cells: int
    linkable_contributions: int

    @property
    def total(self) -> int:
        """A single comparable magnitude (the tests only compare, never
        interpret, this number)."""
        return self.identifiable_users + self.pii_cells + self.linkable_contributions

    def __str__(self) -> str:  # pragma: no cover - rendering
        return (
            f"exposure: {self.identifiable_users} identifiable user(s), "
            f"{self.pii_cells} PII cell(s), "
            f"{self.linkable_contributions} linkable contribution(s)"
        )


def _placeholder_keys(db: Database) -> set[str]:
    from repro.core.physical import REGISTRY_TABLE

    if not db.has_table(REGISTRY_TABLE):
        return set()
    return {row["key"] for row in db.table(REGISTRY_TABLE).rows()}


def measure_exposure(db: Database, user_table: str) -> ExposureReport:
    """Measure breach exposure relative to *user_table* accounts.

    Placeholder rows (from the engine's registry) are not identifiable and
    do not count, nor do contributions pointing at them — that is exactly
    the protection decorrelation buys.
    """
    placeholders = _placeholder_keys(db)
    users_schema = db.table(user_table).schema
    pk_col = users_schema.primary_key

    identifiable: set = set()
    pii_cells = 0
    for row in db.table(user_table).rows():
        key = f"{user_table}:{row[pk_col]!r}"
        if key in placeholders:
            continue
        identifiable.add(row[pk_col])
        for col in users_schema.pii_columns():
            value = row[col.name]
            if value is None or value in ("[redacted]", "[deleted]"):
                continue
            if isinstance(value, str) and value.endswith("@anon.invalid"):
                continue
            pii_cells += 1

    linkable = 0
    for child_schema, fk in db.schema.referencing(user_table):
        if child_schema.name.startswith("_"):
            continue
        for row in db.table(child_schema.name).rows():
            if row[fk.column] in identifiable:
                linkable += 1
        # PII cells on linkable rows also count (e.g. ReviewRequest names).
        for col in child_schema.pii_columns():
            for row in db.table(child_schema.name).rows():
                value = row[col.name]
                if value is None or value in ("[redacted]", "[deleted]"):
                    continue
                if isinstance(value, str) and value.endswith("@anon.invalid"):
                    continue
                pii_cells += 1

    return ExposureReport(
        identifiable_users=len(identifiable),
        pii_cells=pii_cells,
        linkable_contributions=linkable,
    )
