"""Explain a disguise before applying it (paper §1, §7).

"Finding the affected data is already nontrivial … Static analysis and
other techniques may be required to explain the consequences of a
disguise." :func:`explain` produces a :class:`DisguisePlan` — a dry-run
report of what ``apply`` *would* do — without modifying anything:

* per-table row counts each transformation would touch (predicates are
  evaluated read-only);
* placeholders that would be created, cascades that would fire, and
  RESTRICT conflicts that would abort the disguise;
* interactions with currently *active* disguises: which vault entries
  composition would recorrelate, and which decorrelations the optimizer
  would skip.

The plan is advisory: it reads the live database, so a concurrent change
between explain and apply can shift counts. Its structure, however, is
exact — it is computed by the same predicate evaluation and FK traversal
the real apply uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.compose import skippable_decorrelation
from repro.errors import DisguiseError
from repro.spec.disguise import DisguiseSpec, USER_PARAM
from repro.spec.transform import Decorrelate, Modify, Remove
from repro.storage.compile import matcher
from repro.storage.schema import FKAction
from repro.vault.entry import OP_REMOVE

__all__ = ["explain", "DisguisePlan", "PlannedAction", "PlannedConflict"]


@dataclass(frozen=True)
class PlannedAction:
    """One transformation's predicted effect on one table."""

    table: str
    kind: str  # remove | modify | decorrelate | cascade | setnull
    rows: int
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - rendering
        suffix = f" ({self.detail})" if self.detail else ""
        return f"{self.kind:12s} {self.table:24s} {self.rows:6d} row(s){suffix}"


@dataclass(frozen=True)
class PlannedConflict:
    """A referential-integrity conflict that would abort the disguise."""

    table: str
    referencing_table: str
    column: str
    rows: int

    def __str__(self) -> str:  # pragma: no cover - rendering
        return (
            f"removing {self.table} rows would strand {self.rows} row(s) of "
            f"{self.referencing_table}.{self.column} (ON DELETE RESTRICT, "
            f"not addressed by the spec)"
        )


@dataclass
class DisguisePlan:
    """The dry-run result: everything ``apply`` would do."""

    spec_name: str
    uid: Any
    actions: list[PlannedAction] = field(default_factory=list)
    conflicts: list[PlannedConflict] = field(default_factory=list)
    placeholders: int = 0
    rows_touched: int = 0
    recorrelations: int = 0       # active-disguise entries composition reverses
    optimizer_skips: int = 0      # redundant decorrelations the optimizer skips
    active_interactions: list[str] = field(default_factory=list)

    @property
    def is_applicable(self) -> bool:
        """False if apply would abort on a RESTRICT conflict."""
        return not self.conflicts

    def describe(self) -> str:
        lines = [f"plan for {self.spec_name!r} (uid={self.uid}):"]
        for action in self.actions:
            lines.append(f"  {action}")
        lines.append(
            f"  total: {self.rows_touched} row(s), "
            f"{self.placeholders} placeholder(s)"
        )
        if self.recorrelations or self.optimizer_skips:
            lines.append(
                f"  composition: {self.recorrelations} recorrelation(s), "
                f"{self.optimizer_skips} optimizer skip(s)"
            )
        for interaction in self.active_interactions:
            lines.append(f"  interacts: {interaction}")
        for conflict in self.conflicts:
            lines.append(f"  CONFLICT: {conflict}")
        return "\n".join(lines)


def explain(engine, spec: DisguiseSpec | str, uid: Any = None,
            optimize: bool = True) -> DisguisePlan:
    """Dry-run *spec* for *uid* against *engine*'s database and vault."""
    resolved = engine.spec(spec) if isinstance(spec, str) else spec
    if resolved.is_user_disguise and uid is None:
        raise DisguiseError(
            f"disguise {resolved.name!r} is parameterized by $UID; pass uid="
        )
    params: Mapping[str, Any] = {USER_PARAM: uid} if uid is not None else {}
    db = engine.db
    plan = DisguisePlan(spec_name=resolved.name, uid=uid)

    removed_pks: dict[str, set[Any]] = {}
    for table_disguise in resolved.tables:
        for transformation in table_disguise.transformations:
            rows = db.select(table_disguise.table, transformation.pred, params)
            if isinstance(transformation, Remove):
                pk_col = db.table(table_disguise.table).schema.primary_key
                removed_pks.setdefault(table_disguise.table, set()).update(
                    row[pk_col] for row in rows
                )
                plan.actions.append(
                    PlannedAction(table_disguise.table, "remove", len(rows))
                )
            elif isinstance(transformation, Modify):
                plan.actions.append(
                    PlannedAction(
                        table_disguise.table,
                        "modify",
                        len(rows),
                        detail=f"{transformation.column} <- {transformation.label}",
                    )
                )
            elif isinstance(transformation, Decorrelate):
                live = [
                    row for row in rows
                    if row[transformation.foreign_key] is not None
                ]
                plan.actions.append(
                    PlannedAction(
                        table_disguise.table,
                        "decorrelate",
                        len(live),
                        detail=f"fk {transformation.foreign_key}",
                    )
                )
                plan.placeholders += len(live)
            plan.rows_touched += len(rows)

    _plan_removal_side_effects(engine, resolved, removed_pks, params, plan)
    _plan_composition(engine, resolved, uid, optimize, plan)
    return plan


def _plan_removal_side_effects(engine, spec, removed_pks, params, plan) -> None:
    """Cascades, SET NULLs, and RESTRICT conflicts removal would trigger."""
    db = engine.db
    for table, pks in removed_pks.items():
        for child_schema, fk in db.schema.referencing(table):
            affected = 0
            for pk in pks:
                affected += len(
                    db.table(child_schema.name).referencing_rows(fk.column, pk)
                )
            if not affected:
                continue
            child_td = spec.table_disguise(child_schema.name)
            if fk.on_delete is FKAction.CASCADE:
                plan.actions.append(
                    PlannedAction(
                        child_schema.name, "cascade", affected,
                        detail=f"via {fk.column} -> {table}",
                    )
                )
                plan.rows_touched += affected
            elif fk.on_delete is FKAction.SET_NULL:
                plan.actions.append(
                    PlannedAction(
                        child_schema.name, "setnull", affected,
                        detail=f"{fk.column} (parent {table} removed)",
                    )
                )
                plan.rows_touched += affected
            else:  # RESTRICT: only a conflict if the spec leaves rows behind
                if child_td is None:
                    plan.conflicts.append(
                        PlannedConflict(table, child_schema.name, fk.column, affected)
                    )
                else:
                    # The spec addresses the child table; whether it clears
                    # *these* rows depends on predicates — check them.
                    cleared = _would_clear(engine, child_td, fk.column, pks, params)
                    if not cleared:
                        plan.conflicts.append(
                            PlannedConflict(
                                table, child_schema.name, fk.column, affected
                            )
                        )


def _would_clear(engine, table_disguise, fk_column, parent_pks, params) -> bool:
    """Whether the spec's transformations on the child table detach every
    row referencing the removed parents."""
    db = engine.db
    # Bind each transformation's predicate to a compiled row matcher once;
    # the loops below test every referencing row against every predicate.
    matchers = [
        (matcher(transformation.pred, params), transformation)
        for transformation in table_disguise.transformations
    ]
    for pk in parent_pks:
        for row in db.table(table_disguise.table).referencing_rows(fk_column, pk):
            handled = False
            for match, transformation in matchers:
                if not match(row):
                    continue
                if isinstance(transformation, Remove):
                    handled = True
                elif (
                    isinstance(transformation, Decorrelate)
                    and transformation.foreign_key == fk_column
                ):
                    handled = True
                elif (
                    isinstance(transformation, Modify)
                    and transformation.column == fk_column
                    and transformation.fn(row[fk_column]) is None
                ):
                    handled = True
                if handled:
                    break
            if not handled:
                return False
    return True


def _plan_composition(engine, spec, uid, optimize, plan) -> None:
    """Predict composition work against the currently active disguises."""
    if uid is None:
        return
    try:
        entries = engine.vault.entries_for(uid)
    except Exception:
        plan.active_interactions.append(
            "user's vault is not readable (locked?); composition would fail"
        )
        return
    touched = set(spec.table_names)
    seen_disguises = set()
    for entry in entries:
        if entry.table not in touched or entry.op == OP_REMOVE:
            continue
        if optimize and skippable_decorrelation(spec, entry):
            plan.optimizer_skips += 1
        else:
            plan.recorrelations += 1
        seen_disguises.add(entry.disguise_id)
    for did in sorted(seen_disguises):
        record = engine.history.get(did)
        plan.active_interactions.append(
            f"active disguise {record.name!r} (did={did}) holds vault state "
            f"for this user"
        )
