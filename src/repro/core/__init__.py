"""The disguising engine: apply, compose, reveal, assert, schedule."""

from repro.core.assertions import PrivacyAssertion
from repro.core.audit import LeakFinding, audit_user_erasure, scan_for_pii
from repro.core.exposure import ExposureReport, measure_exposure
from repro.core.engine import Disguiser
from repro.core.explain import DisguisePlan, explain
from repro.core.guard import UpdateGuard
from repro.core.migrate import MigrationReport
from repro.core.history import DisguiseHistory, HistoryRecord
from repro.core.scheduler import (
    DecayPolicy,
    DecayStage,
    ExpirationPolicy,
    PolicyScheduler,
    SimClock,
)
from repro.core.stats import DisguiseReport, RevealReport

__all__ = [
    "Disguiser",
    "DisguisePlan",
    "explain",
    "UpdateGuard",
    "MigrationReport",
    "LeakFinding",
    "ExposureReport",
    "measure_exposure",
    "audit_user_erasure",
    "scan_for_pii",
    "DisguiseHistory",
    "HistoryRecord",
    "DisguiseReport",
    "RevealReport",
    "PrivacyAssertion",
    "SimClock",
    "PolicyScheduler",
    "ExpirationPolicy",
    "DecayPolicy",
    "DecayStage",
]
