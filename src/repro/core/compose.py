"""Disguise composition: temporary recorrelation via vault reveal functions.

"When applying a disguise, Edna not only modifies objects, but may also
read and apply reveal functions from vaults" (paper §6). Concretely, a
user-invoked disguise (GDPR+) applied after another disguise already
transformed the user's data (ConfAnon) cannot find that data by predicate:
the rows now point at placeholders. The engine therefore:

1. reads the user's vault entries from earlier active disguises,
2. temporarily reverses them ("recorrelation"), so predicates match and
   removals capture the *original* state,
3. applies the new disguise, and
4. re-executes the temporarily reversed operations against whatever
   survives.

The optimizer implements the §6 "manual optimization" automatically: if
the new spec decorrelates the same foreign key that an earlier entry
already decorrelated — and nothing else in the new spec needs the original
value — the reversal and re-execution are skipped entirely, because the
privacy goal (unlinkability from the user) is already achieved. In the
paper this drops composed latency from 452 ms to 118 ms.
"""

from __future__ import annotations

from typing import Any

from repro.core.history import DisguiseHistory
from repro.core.physical import OpExecutor, PlaceholderFactory, VaultJournal
from repro.core.stats import DisguiseReport
from repro.spec.disguise import DisguiseSpec
from repro.spec.transform import Decorrelate, Modify, Remove
from repro.vault.base import VaultStore
from repro.vault.entry import OP_DECORRELATE, OP_REMOVE, VaultEntry

__all__ = ["recorrelate_for_user", "reapply_recorrelated", "skippable_decorrelation"]


def skippable_decorrelation(spec: DisguiseSpec, entry: VaultEntry) -> bool:
    """Whether the optimizer may skip recorrelating *entry* for *spec*.

    Safe iff the new spec would decorrelate the same (table, foreign key)
    anyway, and no other transformation in the spec on that table needs the
    original foreign-key value (a Remove must see the row to delete it; a
    Modify whose predicate reads the column must see the original).
    """
    if entry.op != OP_DECORRELATE:
        return False
    table_disguise = spec.table_disguise(entry.table)
    if table_disguise is None:
        return False
    has_same_decorrelation = False
    for transformation in table_disguise.transformations:
        if isinstance(transformation, Decorrelate):
            if transformation.foreign_key == entry.column:
                has_same_decorrelation = True
            continue
        if isinstance(transformation, Remove):
            return False
        if isinstance(transformation, Modify) and entry.column in transformation.pred.columns():
            return False
    return has_same_decorrelation


def recorrelate_for_user(
    executor: OpExecutor,
    vault: VaultStore,
    spec: DisguiseSpec,
    uid: Any,
    epoch: int,
    optimize: bool,
    report: DisguiseReport,
) -> list[VaultEntry]:
    """Temporarily reverse earlier disguises' entries owned by *uid*.

    Returns the entries that were actually reversed (newest-first
    processing, so chained transformations unwind correctly); the caller
    re-executes them after the new disguise via
    :func:`reapply_recorrelated`. Entries whose rows were removed by other
    disguises compose naturally and are left alone ("there is no need to
    decorrelate data that another disguise removed", §4.2) — as are
    REMOVE entries themselves.
    """
    entries = vault.entries_for(uid, before_epoch=epoch)
    touched = set(spec.table_names)
    recorrelated: list[VaultEntry] = []
    for entry in sorted(entries, key=lambda e: e.seq, reverse=True):
        if entry.table not in touched:
            continue  # the new spec never looks at this row
        if entry.op == OP_REMOVE:
            continue
        if optimize and skippable_decorrelation(spec, entry):
            report.redundant_skipped += 1
            continue
        outcome = executor.reverse_entry(entry)
        if outcome.status == "restored":
            recorrelated.append(entry)
            report.recorrelated += 1
        # "missing" (row removed meanwhile) and "stale" (an unowned chain
        # link supersedes this one) both mean the original value is not
        # reachable from this user's vault alone; leave the entry in place.
    return recorrelated


def reapply_recorrelated(
    executor: OpExecutor,
    history: DisguiseHistory,
    journal: VaultJournal,
    factory: PlaceholderFactory,
    spec_lookup,
    recorrelated: list[VaultEntry],
    report: DisguiseReport,
) -> None:
    """Re-execute temporarily reversed operations (oldest first).

    Rows the new disguise removed need nothing — their disguise's effect is
    moot and the entry is dropped (the new disguise's REMOVE entry holds the
    recorrelated original, so a later reveal restores true pre-disguise
    state). Surviving rows get the operation re-executed with a fresh
    sequence number, and the owning disguise's vault entry is replaced so
    it reverses the *new* physical change.
    """
    for entry in sorted(recorrelated, key=lambda e: e.seq):
        owning_spec = spec_lookup(entry.disguise_id)
        new_entry = executor.reexecute_entry(
            entry, owning_spec, factory, history.next_seq()
        )
        if new_entry is None:
            journal.delete(entry)
        else:
            journal.replace(entry, new_entry)
            report.reapplied += 1
            if new_entry.op == OP_DECORRELATE:
                report.placeholders_created += 1
