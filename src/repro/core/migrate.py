"""Migrating disguised state across schema changes (paper §7).

A schema change on a database with *active disguises* must also migrate
the reveal functions sitting in vaults, or existing disguises silently
stop being reversible. :func:`migrate_vault` rewrites the reachable vault
entries for each :class:`~repro.storage.evolve.SchemaChange`:

* **AddColumn** — stored REMOVE payload rows gain the new column's default
  so reinsert passes NOT NULL checks;
* **DropColumn** — payload rows lose the column; MODIFY entries *on* the
  dropped column are deleted (that part of the disguise becomes
  permanent — the data it would restore no longer has a home);
* **RenameColumn / RenameTable** — names are rewritten everywhere they
  appear (entry table, payload column, placeholder table).

:func:`migrate_spec` produces an updated :class:`DisguiseSpec` for the
rename changes (predicates are rebuilt by textual re-parse of their
rendered form, which is lossless for the supported grammar) and reports
when a spec references a dropped column — the developer must revise it.

:meth:`repro.core.engine.Disguiser.evolve_schema` drives all three layers
(database, vaults, registered specs) from one change object.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import SpecError, VaultError
from repro.spec.disguise import DisguiseSpec, TableDisguise
from repro.spec.transform import Decorrelate, Modify, Remove
from repro.storage.evolve import (
    AddColumn,
    DropColumn,
    RenameColumn,
    RenameTable,
    SchemaChange,
)
from repro.storage.sql import parse_where
from repro.vault.base import VaultStore
from repro.vault.entry import OP_MODIFY, OP_REMOVE, VaultEntry

__all__ = ["MigrationReport", "migrate_vault", "migrate_spec"]


@dataclass
class MigrationReport:
    """What a vault migration did."""

    change: str
    entries_rewritten: int = 0
    entries_invalidated: int = 0
    locked_owners: list[Any] = field(default_factory=list)
    revised_specs: list[str] = field(default_factory=list)
    unmigratable_specs: list[str] = field(default_factory=list)

    def describe(self) -> str:
        parts = [
            f"{self.change}: {self.entries_rewritten} entr(y/ies) rewritten",
        ]
        if self.entries_invalidated:
            parts.append(f"{self.entries_invalidated} invalidated")
        if self.locked_owners:
            parts.append(f"{len(self.locked_owners)} locked vault(s) skipped")
        if self.revised_specs:
            parts.append(f"specs revised: {', '.join(self.revised_specs)}")
        if self.unmigratable_specs:
            parts.append(
                f"specs needing manual revision: {', '.join(self.unmigratable_specs)}"
            )
        return "; ".join(parts)


def migrate_vault(vault: VaultStore, change: SchemaChange, report: MigrationReport) -> None:
    """Rewrite every reachable vault entry for *change*.

    Locked (encrypted) vaults cannot be rewritten without their keys; their
    owners are recorded in the report so the deployment can migrate them
    lazily at unlock time.
    """
    owners = [None, *vault.owners()]
    for owner in owners:
        try:
            entries = vault.entries_for(owner)
        except VaultError:
            report.locked_owners.append(owner)
            continue
        for entry in entries:
            migrated = _migrate_entry(entry, change)
            if migrated is None:
                vault.delete(entry.owner, [entry.entry_id])
                report.entries_invalidated += 1
            elif migrated != entry:
                vault.replace(migrated)
                report.entries_rewritten += 1


def _migrate_entry(entry: VaultEntry, change: SchemaChange) -> VaultEntry | None:
    """The migrated entry, the same entry if untouched, or None to drop."""
    if isinstance(change, AddColumn):
        if entry.table == change.table and entry.op == OP_REMOVE:
            row = entry.removed_row
            if change.column.name not in row:
                row[change.column.name] = change.column.default
                return entry.with_payload(entry.seq, row=row)
        return entry
    if isinstance(change, DropColumn):
        if entry.table != change.table:
            return entry
        if entry.op == OP_REMOVE:
            row = entry.removed_row
            if change.column in row:
                del row[change.column]
                return entry.with_payload(entry.seq, row=row)
            return entry
        if entry.payload.get("column") == change.column:
            # The value this entry would restore has no column anymore.
            return None if entry.op == OP_MODIFY else entry
        return entry
    if isinstance(change, RenameColumn):
        if entry.table != change.table:
            return entry
        updated = entry
        if entry.op == OP_REMOVE:
            row = entry.removed_row
            if change.old in row:
                row[change.new] = row.pop(change.old)
                updated = entry.with_payload(entry.seq, row=row)
        elif entry.payload.get("column") == change.old:
            updated = entry.with_payload(entry.seq, column=change.new)
        return updated
    if isinstance(change, RenameTable):
        updated = entry
        if entry.table == change.table:
            updated = replace(updated, table=change.new)
        if updated.payload.get("placeholder_table") == change.table:
            updated = updated.with_payload(
                updated.seq, placeholder_table=change.new
            )
        return updated
    return entry


# ---------------------------------------------------------------------------
# Spec migration
# ---------------------------------------------------------------------------


def migrate_spec(spec: DisguiseSpec, change: SchemaChange) -> DisguiseSpec:
    """A copy of *spec* updated for *change*.

    Raises :class:`SpecError` for changes the spec cannot survive
    automatically (a dropped column it reads or writes) — the report then
    lists it for manual revision.
    """
    if isinstance(change, AddColumn):
        return spec
    if isinstance(change, DropColumn):
        _reject_dropped_column(spec, change)
        return spec
    if isinstance(change, RenameColumn):
        return _rename_in_spec(
            spec,
            table=change.table,
            column_map={change.old: change.new},
            table_map={},
        )
    if isinstance(change, RenameTable):
        return _rename_in_spec(
            spec, table=change.table, column_map={}, table_map={change.table: change.new}
        )
    return spec


def _reject_dropped_column(spec: DisguiseSpec, change: DropColumn) -> None:
    table_disguise = spec.table_disguise(change.table)
    if table_disguise is None:
        return
    if change.column in table_disguise.generate_placeholder:
        raise SpecError(
            f"{spec.name}: generate_placeholder uses dropped column "
            f"{change.table}.{change.column}"
        )
    for transformation in table_disguise.transformations:
        if change.column in transformation.pred.columns():
            raise SpecError(
                f"{spec.name}: a predicate reads dropped column "
                f"{change.table}.{change.column}"
            )
        if isinstance(transformation, Modify) and transformation.column == change.column:
            raise SpecError(
                f"{spec.name}: Modify targets dropped column "
                f"{change.table}.{change.column}"
            )
        if (
            isinstance(transformation, Decorrelate)
            and transformation.foreign_key == change.column
        ):
            raise SpecError(
                f"{spec.name}: Decorrelate targets dropped column "
                f"{change.table}.{change.column}"
            )


def _rename_pred(pred, column_map: dict[str, str]):
    """Rebuild a predicate with columns renamed, via its canonical text."""
    text = str(pred)
    for old, new in column_map.items():
        # Identifiers in the rendered form are bare words; a targeted
        # re-parse keeps this robust for the supported grammar.
        import re

        text = re.sub(rf"\b{re.escape(old)}\b", new, text)
    return parse_where(text)


def _rename_in_spec(
    spec: DisguiseSpec,
    table: str,
    column_map: dict[str, str],
    table_map: dict[str, str],
) -> DisguiseSpec:
    tables = []
    for table_disguise in spec.tables:
        applies = table_disguise.table == table or table_disguise.table in table_map
        new_name = table_map.get(table_disguise.table, table_disguise.table)
        if not applies and not table_map:
            tables.append(table_disguise)
            continue
        transformations = []
        for transformation in table_disguise.transformations:
            pred = (
                _rename_pred(transformation.pred, column_map)
                if applies and column_map
                else transformation.pred
            )
            if isinstance(transformation, Remove):
                transformations.append(Remove(pred))
            elif isinstance(transformation, Modify):
                transformations.append(
                    Modify(
                        pred,
                        column=column_map.get(transformation.column, transformation.column)
                        if applies
                        else transformation.column,
                        fn=transformation.fn,
                        label=transformation.label,
                    )
                )
            elif isinstance(transformation, Decorrelate):
                transformations.append(
                    Decorrelate(
                        pred,
                        foreign_key=column_map.get(
                            transformation.foreign_key, transformation.foreign_key
                        )
                        if applies
                        else transformation.foreign_key,
                    )
                )
        generators = {
            (column_map.get(name, name) if applies else name): generator
            for name, generator in table_disguise.generate_placeholder.items()
        }
        owner = table_disguise.owner_column
        if applies and owner in column_map:
            owner = column_map[owner]
        tables.append(
            TableDisguise(
                table=new_name,
                transformations=transformations,
                generate_placeholder=generators,
                owner_column=owner,
            )
        )
    return DisguiseSpec(spec.name, tables, spec.description)
