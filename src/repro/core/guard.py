"""Application updates to disguised data (paper §7).

"Our framework does not answer how disguises compose with normal
application changes to disguised data. … One possible solution is to make
such updates themselves disguises, and store metadata about them in
vaults, but this would be expensive. Another solution would prohibit
updates to disguised data (which limits the application)."

:class:`UpdateGuard` implements both options as a write path the
application routes its mutations through:

* ``mode="prohibit"`` — updates and deletes against rows with active vault
  entries raise :class:`~repro.errors.DisguiseError` (the paper's "limits
  the application" option);
* ``mode="log"`` — the mutation proceeds, and a record of it is appended
  to an engine-owned ``_update_log`` table. When a disguise on that row is
  later revealed, the engine re-applies the logged values on top of the
  restored state, so the application's post-disguise edits survive the
  reveal (the paper's "make such updates themselves disguises" option,
  at the cost of one extra row per update);
* ``mode="allow"`` — unguarded writes (reveal may clobber them; this is
  the behaviour of a guard-less deployment, made explicit).

Disguised-row detection reads the vaults of all *accessible* owners;
locked (encrypted) vaults cannot be consulted, so in ``prohibit`` mode a
row that *might* be covered only by a locked vault is allowed through —
the deployment's tiering (see :mod:`repro.vault.multitier`) decides how
much the guard can see.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.errors import DisguiseError, VaultError
from repro.storage.schema import Column, TableSchema
from repro.storage.types import ColumnType

__all__ = ["UpdateGuard", "UPDATE_LOG_TABLE"]

UPDATE_LOG_TABLE = "_update_log"

_MODES = ("prohibit", "log", "allow")


def _update_log_schema() -> TableSchema:
    return TableSchema(
        UPDATE_LOG_TABLE,
        [
            Column("log_id", ColumnType.INTEGER, nullable=False),
            Column("tbl", ColumnType.TEXT, nullable=False),
            Column("pk", ColumnType.TEXT, nullable=False),  # repr of the key
            Column("col", ColumnType.TEXT, nullable=False),
            Column("value_json", ColumnType.TEXT),
            Column("seq", ColumnType.INTEGER, nullable=False),
        ],
        primary_key="log_id",
    )


class UpdateGuard:
    """Routes application mutations with disguised-data awareness."""

    def __init__(self, engine, mode: str = "prohibit") -> None:
        if mode not in _MODES:
            raise DisguiseError(f"unknown guard mode {mode!r}; pick from {_MODES}")
        self.engine = engine
        self.mode = mode
        if mode == "log" and not engine.db.has_table(UPDATE_LOG_TABLE):
            engine.db.create_table(_update_log_schema())

    # -- disguise detection --------------------------------------------------------

    def is_disguised(self, table: str, pk: Any) -> bool:
        """Whether any active disguise holds a vault entry for this row.

        Consults the global vault plus each active disguise's owner vault;
        locked vaults are skipped (see module docstring).
        """
        vault = self.engine.vault
        candidates = [None]
        # Global disguises route entries to the affected row's owner, so
        # every enumerable vault is a candidate, not just invoking users.
        for owner in vault.owners():
            if owner not in candidates:
                candidates.append(owner)
        for record in self.engine.history.records(active_only=True):
            if record.uid is not None and record.uid not in candidates:
                candidates.append(record.uid)
        for owner in candidates:
            try:
                entries = vault.entries_for(owner, table=table)
            except VaultError:
                continue
            if any(entry.pk == pk for entry in entries):
                return True
        return False

    # -- guarded write path -----------------------------------------------------------

    def update(self, table: str, pk: Any, changes: Mapping[str, Any]) -> dict[str, Any]:
        """Apply *changes* to one row through the guard."""
        disguised = self.mode != "allow" and self.is_disguised(table, pk)
        if disguised and self.mode == "prohibit":
            raise DisguiseError(
                f"row {table}:{pk!r} is covered by an active disguise; "
                f"updates to disguised data are prohibited"
            )
        row = self.engine.db.update_by_pk(table, pk, changes)
        if disguised and self.mode == "log":
            self._log_changes(table, pk, changes)
        return row

    def delete(self, table: str, pk: Any) -> dict[str, Any]:
        """Delete one row through the guard.

        Deletes of disguised rows are prohibited in both ``prohibit`` and
        ``log`` modes: a logged delete cannot be meaningfully replayed over
        a reveal (the paper marks deletion as the one application change
        disguising handles naturally — via a disguise, not a raw delete).
        """
        if self.mode != "allow" and self.is_disguised(table, pk):
            raise DisguiseError(
                f"row {table}:{pk!r} is covered by an active disguise; "
                f"delete it through a disguise instead"
            )
        return self.engine.db.delete_by_pk(table, pk)

    # -- update log -------------------------------------------------------------------

    def _log_changes(self, table: str, pk: Any, changes: Mapping[str, Any]) -> None:
        import json

        db = self.engine.db
        for column, value in changes.items():
            db.insert(
                UPDATE_LOG_TABLE,
                {
                    "log_id": db.next_id(UPDATE_LOG_TABLE),
                    "tbl": table,
                    "pk": repr(pk),
                    "col": column,
                    "value_json": json.dumps(value),
                    "seq": self.engine.history.next_seq(),
                },
            )

    def logged_updates(self, table: str, pk: Any) -> list[dict[str, Any]]:
        """Logged post-disguise updates for one row, oldest first."""
        db = self.engine.db
        if not db.has_table(UPDATE_LOG_TABLE):
            return []
        rows = db.select(
            UPDATE_LOG_TABLE, "tbl = $T AND pk = $P", {"T": table, "P": repr(pk)}
        )
        return sorted(rows, key=lambda row: row["seq"])

    def replay_after_reveal(self, reveal_report) -> int:
        """Re-apply logged updates to rows a reveal just restored.

        Call after :meth:`Disguiser.reveal`; returns how many column values
        were re-applied. Replayed log records are consumed.
        """
        import json

        db = self.engine.db
        if not db.has_table(UPDATE_LOG_TABLE):
            return 0
        replayed = 0
        for record in db.select(UPDATE_LOG_TABLE):
            table, pk_repr = record["tbl"], record["pk"]
            target = None
            for row in db.select(table):
                pk_col = db.table(table).schema.primary_key
                if repr(row[pk_col]) == pk_repr:
                    target = row[pk_col]
                    break
            if target is None:
                continue
            if self.is_disguised(table, target):
                continue  # still disguised; replay when fully revealed
            db.update_by_pk(table, target, {record["col"]: json.loads(record["value_json"])})
            db.delete_by_pk(UPDATE_LOG_TABLE, record["log_id"])
            replayed += 1
        return replayed
