"""Per-operation reports returned by the disguising engine.

The §6 evaluation is entirely about these numbers: statement counts
(linearity), wall-clock latency (composition experiment), and the vault
traffic that explains the composed-disguise overhead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.database import QueryStats
from repro.vault.base import VaultStats

__all__ = ["DisguiseReport", "RevealReport"]


@dataclass
class DisguiseReport:
    """What one ``apply`` did and what it cost."""

    disguise_id: int
    name: str
    uid: object
    duration_s: float = 0.0
    rows_removed: int = 0
    rows_modified: int = 0
    rows_decorrelated: int = 0
    placeholders_created: int = 0
    cascades: int = 0
    recorrelated: int = 0       # vault entries temporarily reversed (composition)
    reapplied: int = 0          # of those, re-executed after this disguise
    redundant_skipped: int = 0  # decorrelations skipped by the optimizer
    vault_entries_written: int = 0
    assertion_failures: list[str] = field(default_factory=list)
    db_stats: QueryStats = field(default_factory=QueryStats)
    vault_stats: VaultStats = field(default_factory=VaultStats)

    @property
    def rows_touched(self) -> int:
        return self.rows_removed + self.rows_modified + self.rows_decorrelated

    def summary(self) -> str:
        """One-line human-readable result, used by the examples."""
        return (
            f"{self.name}(uid={self.uid}) did={self.disguise_id}: "
            f"removed {self.rows_removed}, modified {self.rows_modified}, "
            f"decorrelated {self.rows_decorrelated} "
            f"(+{self.placeholders_created} placeholders, "
            f"{self.recorrelated} recorrelated, {self.redundant_skipped} skipped) "
            f"in {self.duration_s * 1e3:.2f} ms, "
            f"{self.db_stats.total} statements"
        )


@dataclass
class RevealReport:
    """What one ``reveal`` restored and what it cost."""

    disguise_id: int
    name: str
    uid: object
    duration_s: float = 0.0
    rows_reinserted: int = 0
    fks_restored: int = 0
    values_restored: int = 0
    placeholders_deleted: int = 0
    chain_reversed: int = 0     # later-disguise entries temporarily reversed
    chain_reapplied: int = 0    # and re-executed afterwards
    spec_reapplied: int = 0     # later disguises re-applied to revealed rows
    entries_consumed: int = 0
    db_stats: QueryStats = field(default_factory=QueryStats)
    vault_stats: VaultStats = field(default_factory=VaultStats)

    def summary(self) -> str:
        return (
            f"reveal {self.name}(uid={self.uid}) did={self.disguise_id}: "
            f"reinserted {self.rows_reinserted}, restored {self.fks_restored} fks / "
            f"{self.values_restored} values, re-applied {self.chain_reapplied} chain + "
            f"{self.spec_reapplied} spec ops in {self.duration_s * 1e3:.2f} ms"
        )
