"""Spec interpretation: turning a disguise specification into storage ops.

"The data disguising tool takes the disguise specification and turns it
into storage operations that appropriately rewrite affected foreign keys"
(paper §4.1). The runner executes one disguise application (or a
restricted re-application during reveal) inside the engine's open
transaction:

* **Phase A** — Modify and Decorrelate transformations, in spec order.
  Matching rows are snapshotted before execution so placeholder rows
  created along the way are never transformed themselves.
* **Phase B** — Remove transformations, ordered children-before-parents
  across tables (via the schema's foreign-key graph), so deletes never
  trip referential integrity when the spec covers all referencing tables.

Every physical change writes one vault entry (unless the disguise is
irreversible), tagged with the owning user for per-user vault routing.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping

import networkx as nx

from repro.core.history import DisguiseHistory
from repro.core.physical import OpExecutor, PlaceholderFactory, VaultJournal
from repro.core.stats import DisguiseReport
from repro.errors import DisguiseError
from repro.obs.trace import TRACER as _TRACER
from repro.spec.disguise import DisguiseSpec, TableDisguise
from repro.spec.transform import Decorrelate, Modify, Remove
from repro.storage.predicate import And, InList, ColumnRef, Literal
from repro.vault.entry import OP_DECORRELATE, OP_MODIFY, OP_REMOVE, VaultEntry

__all__ = ["SpecRunner"]


class SpecRunner:
    """Executes one spec (possibly restricted to given rows) for one disguise."""

    def __init__(
        self,
        executor: OpExecutor,
        history: DisguiseHistory,
        journal: VaultJournal,
        factory: PlaceholderFactory,
        spec: DisguiseSpec,
        did: int,
        epoch: int,
        uid: Any,
        params: Mapping[str, Any],
        reversible: bool,
        report: DisguiseReport,
    ) -> None:
        self.executor = executor
        self.db = executor.db
        self.history = history
        self.journal = journal
        self.factory = factory
        self.spec = spec
        self.did = did
        self.epoch = epoch
        self.uid = uid
        self.params = params
        self.reversible = reversible
        self.report = report

    # -- public entry points ---------------------------------------------------

    def run(self, restrict: Mapping[str, Iterable[Any]] | None = None) -> None:
        """Execute the whole spec.

        *restrict*, when given, limits each table's transformations to the
        listed primary keys — reveal uses this to re-apply a later disguise
        to just-revealed rows (§4.2).
        """
        # Phase A: content modification and decorrelation.
        for table_disguise in self.spec.tables:
            for transformation in table_disguise.transformations:
                if isinstance(transformation, Modify):
                    with _TRACER.span("op.modify", table=table_disguise.table,
                                      column=transformation.column):
                        self._run_modify(table_disguise, transformation, restrict)
                elif isinstance(transformation, Decorrelate):
                    with _TRACER.span("op.decorrelate",
                                      table=table_disguise.table,
                                      column=transformation.foreign_key):
                        self._run_decorrelate(table_disguise, transformation, restrict)
        # Phase B: removal, children first.
        for table_disguise in self._removal_order():
            for transformation in table_disguise.transformations:
                if isinstance(transformation, Remove):
                    with _TRACER.span("op.remove", table=table_disguise.table):
                        self._run_remove(table_disguise, transformation, restrict)

    # -- row selection -----------------------------------------------------------

    def _select(
        self,
        table_disguise: TableDisguise,
        transformation,
        restrict: Mapping[str, Iterable[Any]] | None,
    ) -> list[dict[str, Any]]:
        pred = transformation.pred
        if restrict is not None:
            pks = restrict.get(table_disguise.table)
            if not pks:
                return []
            pk_col = self.db.table(table_disguise.table).schema.primary_key
            pred = And(
                pred,
                InList(ColumnRef(pk_col), tuple(Literal(pk) for pk in pks)),
            )
        return self.db.select(table_disguise.table, pred, self.params)

    def _owner(self, table_disguise: TableDisguise, row: Mapping[str, Any]) -> Any:
        """Whose vault receives this entry (paper §4.2 routing)."""
        if self.uid is not None:
            return self.uid
        if table_disguise.owner_column:
            owner = row.get(table_disguise.owner_column)
            return self._reroute_placeholder_owner(table_disguise.table, table_disguise.owner_column, owner)
        return None

    def _reroute_placeholder_owner(self, table: str, column: str, owner: Any) -> Any:
        """Entries whose nominal owner is a placeholder go to the global
        vault: placeholders are not users and have no vault, and resolving
        them back to the real owner would defeat the decorrelation."""
        if owner is None:
            return None
        schema = self.db.table(table).schema
        fk = schema.foreign_key_for(column)
        owner_table = fk.parent_table if fk is not None else table
        if self.executor.is_placeholder(owner_table, owner):
            return None
        return owner

    def _entry_for(
        self,
        table_disguise: TableDisguise,
        row: Mapping[str, Any],
        op: str,
        payload: dict[str, Any],
        owner: Any = None,
    ) -> VaultEntry | None:
        """Build (but do not store) the vault entry for one physical change.

        Entry ids and seqs are allocated at build time, so building entries
        in row order preserves the per-row sequencing reveal depends on.
        Returns None when the disguise is irreversible.
        """
        if not self.reversible:
            return None
        table = table_disguise.table if isinstance(table_disguise, TableDisguise) else table_disguise
        pk_col = self.db.table(table).schema.primary_key
        return VaultEntry(
            entry_id=self.history.next_entry_id(),
            disguise_id=self.did,
            seq=self.history.next_seq(),
            epoch=self.epoch,
            owner=owner if owner is not None else self._owner(table_disguise, row),
            table=table,
            pk=row[pk_col],
            op=op,
            payload=payload,
        )

    def _vault_entry(
        self,
        table_disguise: TableDisguise,
        row: Mapping[str, Any],
        op: str,
        payload: dict[str, Any],
        owner: Any = None,
    ) -> None:
        entry = self._entry_for(table_disguise, row, op, payload, owner)
        if entry is not None:
            self.journal.put(entry)
            self.report.vault_entries_written += 1

    def _emit(self, entries: list[VaultEntry]) -> None:
        """Store a batch of vault entries with one vault append.

        Entries are grouped per owner first so downstream batch stores see
        each owner's entries contiguously: the encrypted wrapper derives
        one set of subkeys and one keystream per owner group, and the file
        vault issues one journal append (and at most one fsync) per owner.
        """
        if not entries:
            return
        by_owner: dict[Any, list[VaultEntry]] = {}
        for entry in entries:
            by_owner.setdefault(entry.owner, []).append(entry)
        if len(by_owner) > 1:
            entries = [entry for group in by_owner.values() for entry in group]
        self.journal.put_many(entries)
        self.report.vault_entries_written += len(entries)

    # -- transformation execution ---------------------------------------------------

    def _run_modify(
        self,
        table_disguise: TableDisguise,
        transformation: Modify,
        restrict: Mapping[str, Iterable[Any]] | None,
    ) -> None:
        rows = self._select(table_disguise, transformation, restrict)
        if not rows:
            return
        new_values = [
            transformation.fn(row[transformation.column]) for row in rows
        ]
        results = self.executor.do_modify_many(
            table_disguise.table, rows, transformation.column, new_values
        )
        self.report.rows_modified += len(rows)
        entries = []
        for row, (old_value, new_value) in zip(rows, results):
            if old_value == new_value:
                continue  # a no-op rewrite carries nothing to reveal
            entry = self._entry_for(
                table_disguise,
                row,
                OP_MODIFY,
                {"column": transformation.column, "old": old_value, "new": new_value},
            )
            if entry is not None:
                entries.append(entry)
        self._emit(entries)

    def _run_decorrelate(
        self,
        table_disguise: TableDisguise,
        transformation: Decorrelate,
        restrict: Mapping[str, Iterable[Any]] | None,
    ) -> None:
        fk = self.db.table(table_disguise.table).schema.foreign_key_for(
            transformation.foreign_key
        )
        if fk is None:
            raise DisguiseError(
                f"{table_disguise.table}.{transformation.foreign_key} "
                f"is not a foreign key"
            )
        parent_disguise = self.spec.table_disguise(fk.parent_table)
        if parent_disguise is None:
            raise DisguiseError(
                f"spec {self.spec.name!r} has no placeholder recipe for "
                f"{fk.parent_table!r}"
            )
        rows = [
            row
            for row in self._select(table_disguise, transformation, restrict)
            if row[transformation.foreign_key] is not None
            # a NULL reference carries no correlation
        ]
        if not rows:
            return
        # Owners are resolved against pre-decorrelation state.
        owners = [
            self._owner_for_decorrelate(table_disguise, transformation, row)
            for row in rows
        ]
        results = self.executor.do_decorrelate_many(
            table_disguise.table,
            rows,
            transformation.foreign_key,
            self.factory,
            parent_disguise,
        )
        self.report.rows_decorrelated += len(rows)
        self.report.placeholders_created += len(rows)
        entries = []
        for row, owner, (old_fk, new_fk, placeholder_table, placeholder_pk) in zip(
            rows, owners, results
        ):
            entry = self._entry_for(
                table_disguise,
                row,
                OP_DECORRELATE,
                {
                    "column": transformation.foreign_key,
                    "old": old_fk,
                    "new": new_fk,
                    "placeholder_table": placeholder_table,
                    "placeholder_pk": placeholder_pk,
                },
                owner=owner,
            )
            if entry is not None:
                entries.append(entry)
        self._emit(entries)

    def _owner_for_decorrelate(
        self,
        table_disguise: TableDisguise,
        transformation: Decorrelate,
        row: Mapping[str, Any],
    ) -> Any:
        """For decorrelation, the natural owner is the user being unlinked —
        the original FK value — unless the spec routes elsewhere."""
        if self.uid is not None:
            return self.uid
        if table_disguise.owner_column:
            owner = row.get(table_disguise.owner_column)
            return self._reroute_placeholder_owner(
                table_disguise.table, table_disguise.owner_column, owner
            )
        owner = row.get(transformation.foreign_key)
        return self._reroute_placeholder_owner(
            table_disguise.table, transformation.foreign_key, owner
        )

    def _run_remove(
        self,
        table_disguise: TableDisguise,
        transformation: Remove,
        restrict: Mapping[str, Iterable[Any]] | None,
    ) -> None:
        """Engine-driven removal: every affected row (CASCADE children,
        SET NULL rewrites) gets its own vault entry, so the whole removal
        is reversible — a raw SQL cascade would silently lose the children.

        The combined removal set for all matching rows is collected once
        (children first, deduplicated across overlapping cascades), then
        executed as contiguous per-table runs of batched statements.
        """
        rows = self._select(table_disguise, transformation, restrict)
        if not rows:
            return
        pk_col = self.db.table(table_disguise.table).schema.primary_key
        removal_set = self.executor.collect_removal_set_many(
            table_disguise.table, [row[pk_col] for row in rows]
        )
        index = 0
        while index < len(removal_set):
            table, _row, action = removal_set[index]
            end = index
            while (
                end < len(removal_set)
                and removal_set[end][0] == table
                and removal_set[end][2] == action
            ):
                end += 1
            run = [item[1] for item in removal_set[index:end]]
            if action.startswith("setnull:"):
                self._setnull_run(
                    table_disguise, table, action.split(":", 1)[1], run
                )
            else:
                self._remove_run(table_disguise, table, run)
            index = end

    def _setnull_run(
        self,
        table_disguise: TableDisguise,
        table: str,
        column: str,
        rows: list[Any],
    ) -> None:
        results = self.executor.do_modify_many(
            table, rows, column, [None] * len(rows)
        )
        self.report.cascades += len(rows)
        entries = []
        for row, (old_value, _new) in zip(rows, results):
            entry = self._entry_for(
                _proxy_td(table_disguise, table),
                row,
                OP_MODIFY,
                {"column": column, "old": old_value, "new": None},
                owner=self._owner(table_disguise, row),
            )
            if entry is not None:
                entries.append(entry)
        self._emit(entries)

    def _remove_run(
        self, table_disguise: TableDisguise, table: str, rows: list[Any]
    ) -> None:
        entries = []
        for row in rows:
            entry = self._entry_for(
                _proxy_td(table_disguise, table),
                row,
                OP_REMOVE,
                {"row": dict(row)},
                owner=self._owner(table_disguise, row),
            )
            if entry is not None:
                entries.append(entry)
        self._emit(entries)
        pk_col = self.db.table(table).schema.primary_key
        self.db.delete_many(table, [row[pk_col] for row in rows])
        self.report.rows_removed += len(rows)
        if table != table_disguise.table:
            self.report.cascades += len(rows)

    # -- removal ordering --------------------------------------------------------------

    def _removal_order(self) -> list[TableDisguise]:
        """Spec tables with Remove ops, children before parents.

        Built from the schema's FK graph (edges child -> parent); a
        topological order of that graph visits children first. Cycles
        (self-references) fall back to spec order for the affected tables.
        """
        removing = [
            table_disguise
            for table_disguise in self.spec.tables
            if any(isinstance(t, Remove) for t in table_disguise.transformations)
        ]
        if len(removing) <= 1:
            return removing
        graph = self.executor.schema.fk_graph()
        # Self-references (comment threads) and mutual FK cycles cannot
        # constrain a linear order; collapse them via condensation.
        graph.remove_edges_from(list(nx.selfloop_edges(graph)))
        try:
            order = {name: i for i, name in enumerate(nx.topological_sort(graph))}
        except nx.NetworkXUnfeasible:
            condensed = nx.condensation(graph)
            order = {}
            for i, component in enumerate(nx.topological_sort(condensed)):
                for name in condensed.nodes[component]["members"]:
                    order[name] = i
        return sorted(removing, key=lambda td: order.get(td.table, len(order)))


def _proxy_td(table_disguise: TableDisguise, table: str) -> TableDisguise:
    """A lightweight stand-in so cascade entries on *other* tables carry the
    right table name (owner routing already resolved by the caller)."""
    if table == table_disguise.table:
        return table_disguise
    return TableDisguise(table=table)
