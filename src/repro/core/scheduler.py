"""Time-triggered disguises: expiration and data decay (paper §2).

* **Expiration** — "Data expiration policies could proactively anonymize
  or sanitize user contributions for long-inactive users. Expiration
  policies should likely be reversible to support user return."
* **Data decay** — "Gradual data decay policies could apply increasingly
  strict privacy transformations over time, aging out sensitive but
  outdated user data."

The scheduler runs on a :class:`SimClock` (the engine never interprets
wall-clock time, so simulated time drives tests and benchmarks
deterministically). Policies are evaluated on :meth:`PolicyScheduler.tick`;
each (policy stage, user) fires at most once while it remains due, and
expiration disguises auto-reveal when the user becomes active again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

from repro.core.engine import Disguiser
from repro.errors import DisguiseError
from repro.storage.database import Database

__all__ = ["SimClock", "ExpirationPolicy", "DecayStage", "DecayPolicy", "PolicyScheduler"]

# Maps each user id to their last-activity timestamp.
ActivityFn = Callable[[Database], Mapping[Any, float]]


class SimClock:
    """A controllable clock; time is seconds since an arbitrary epoch."""

    def __init__(self, start: float = 0.0) -> None:
        self.now = float(start)

    def advance(self, seconds: float) -> float:
        if seconds < 0:
            raise ValueError("time does not run backwards")
        self.now += seconds
        return self.now


@dataclass
class ExpirationPolicy:
    """Disguise users inactive for longer than ``inactive_for`` seconds.

    ``reveal_on_return`` automatically reverses the disguise when the
    user's activity timestamp moves forward again (§2: expiration "should
    likely be reversible to support user return").
    """

    name: str
    spec_name: str
    inactive_for: float
    activity: ActivityFn
    reveal_on_return: bool = True


@dataclass(frozen=True)
class DecayStage:
    """One rung of a decay ladder: after ``age`` seconds, apply ``spec_name``."""

    age: float
    spec_name: str


@dataclass
class DecayPolicy:
    """Apply increasingly strict disguises as a user's data ages.

    Stages must be ordered by increasing age; each stage fires once per
    user when their inactivity exceeds the stage's age. Later stages apply
    *on top of* earlier ones (they compose through the engine's vault
    machinery like any other disguises).
    """

    name: str
    stages: tuple[DecayStage, ...]
    activity: ActivityFn

    def __post_init__(self) -> None:
        ages = [stage.age for stage in self.stages]
        if ages != sorted(ages):
            raise DisguiseError(f"decay policy {self.name!r}: stages must be age-ordered")


@dataclass
class FiredAction:
    """One scheduler decision, for reporting."""

    policy: str
    kind: str  # "apply" | "reveal"
    spec_name: str
    uid: Any
    report: object = None


class PolicyScheduler:
    """Evaluates registered policies against simulated time.

    With ``service`` (a :class:`~repro.service.server.DisguiseService` or
    anything with ``submit_apply``/``submit_reveal``/``status``), due
    disguises are *enqueued* as jobs instead of applied inline — time-
    triggered and user-triggered disguises then share one execution path,
    one lock discipline, and one durability story. Actions report kind
    ``"enqueue-apply"`` / ``"enqueue-reveal"`` with the job as payload,
    and a stage stays marked in-force while its job is in flight (ticks
    resolve finished jobs to disguise ids; dead-lettered jobs un-mark the
    stage so it re-fires).
    """

    def __init__(
        self, engine: Disguiser, clock: SimClock, service: Any = None
    ) -> None:
        self.engine = engine
        self.clock = clock
        self.service = service
        self._expirations: list[ExpirationPolicy] = []
        self._decays: list[DecayPolicy] = []
        # (policy, stage spec, uid) -> disguise id while in force, or
        # ("job", job_id) while the queued apply is still in flight.
        self._in_force: dict[tuple[str, str, Any], Any] = {}

    def add(self, policy: ExpirationPolicy | DecayPolicy) -> None:
        if isinstance(policy, ExpirationPolicy):
            self._expirations.append(policy)
        elif isinstance(policy, DecayPolicy):
            self._decays.append(policy)
        else:
            raise DisguiseError(f"unknown policy type {type(policy).__name__}")

    def in_force(self, policy: str, spec_name: str, uid: Any) -> bool:
        return (policy, spec_name, uid) in self._in_force

    def tick(self) -> list[FiredAction]:
        """Evaluate every policy now; returns the actions taken."""
        if self.service is not None:
            self._resolve_in_flight()
        actions: list[FiredAction] = []
        for policy in self._expirations:
            actions.extend(self._tick_expiration(policy))
        for policy in self._decays:
            actions.extend(self._tick_decay(policy))
        return actions

    # -- queue routing -------------------------------------------------------------

    def _resolve_in_flight(self) -> None:
        """Swap finished jobs' ids in; forget dead-lettered ones."""
        for key, value in list(self._in_force.items()):
            if not (isinstance(value, tuple) and value[0] == "job"):
                continue
            described = self.service.status(value[1])
            if described["state"] == "done":
                self._in_force[key] = described["result"]["did"]
            elif described["state"] == "dead":
                del self._in_force[key]

    def _fire_apply(self, key: tuple, spec_name: str, uid: Any, policy: str) -> FiredAction:
        if self.service is None:
            report = self.engine.apply(spec_name, uid=uid)
            self._in_force[key] = report.disguise_id
            return FiredAction(policy, "apply", spec_name, uid, report)
        job = self.service.submit_apply(spec_name, uid=uid)
        self._in_force[key] = ("job", job.job_id)
        return FiredAction(policy, "enqueue-apply", spec_name, uid, job)

    def _fire_reveal(self, key: tuple, spec_name: str, uid: Any, policy: str) -> FiredAction | None:
        value = self._in_force[key]
        if isinstance(value, tuple) and value[0] == "job":
            # The apply is still in flight; reveal once a tick resolves it.
            return None
        del self._in_force[key]
        if self.service is None:
            report = self.engine.reveal(value)
            return FiredAction(policy, "reveal", spec_name, uid, report)
        job = self.service.submit_reveal(value)
        return FiredAction(policy, "enqueue-reveal", spec_name, uid, job)

    # -- policy evaluation ---------------------------------------------------------

    def _tick_expiration(self, policy: ExpirationPolicy) -> list[FiredAction]:
        actions = []
        activity = policy.activity(self.engine.db)
        for uid, last_active in activity.items():
            key = (policy.name, policy.spec_name, uid)
            idle = self.clock.now - last_active
            if idle >= policy.inactive_for and key not in self._in_force:
                actions.append(
                    self._fire_apply(key, policy.spec_name, uid, policy.name)
                )
            elif idle < policy.inactive_for and key in self._in_force:
                if policy.reveal_on_return:
                    action = self._fire_reveal(
                        key, policy.spec_name, uid, policy.name
                    )
                    if action is not None:
                        actions.append(action)
        return actions

    def _tick_decay(self, policy: DecayPolicy) -> list[FiredAction]:
        actions = []
        activity = policy.activity(self.engine.db)
        for uid, last_active in activity.items():
            idle = self.clock.now - last_active
            for stage in policy.stages:
                key = (policy.name, stage.spec_name, uid)
                if idle >= stage.age and key not in self._in_force:
                    actions.append(
                        self._fire_apply(key, stage.spec_name, uid, policy.name)
                    )
        return actions
