"""Two-tier vault deployment (paper §4.2).

"An alternative might be to provide multi-tier security: the first tier
stores reveal functions of non-GDPR disguises in a global vault accessible
to the disguising tool and application, while the second tier stores
reveal functions from user-invoked disguises in external, per-user
encrypted vaults."

:class:`MultiTierVault` routes entries by how their disguise was invoked:
the engine calls :meth:`note_disguise` when it starts applying a disguise,
and entries of *user-invoked* disguises go to the (typically encrypted)
user tier while entries of *automatic/global* disguises — even though they
belong to individual owners — go to the tool-accessible global tier. This
is what makes composed disguise application practical: applying a user's
GDPR+ after ConfAnon only needs ConfAnon's entries for that user, which
live in the accessible tier.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.vault.base import VaultStore
from repro.vault.entry import VaultEntry

__all__ = ["MultiTierVault"]


class MultiTierVault(VaultStore):
    """Routes user-invoked disguise entries to *user_tier*, others to
    *shared_tier*."""

    def __init__(self, user_tier: VaultStore, shared_tier: VaultStore) -> None:
        super().__init__()
        self.user_tier = user_tier
        self.shared_tier = shared_tier
        self._user_invoked: set[int] = set()

    def note_disguise(self, disguise_id: int, user_invoked: bool) -> None:
        """Record how a disguise was invoked, for routing its entries."""
        if user_invoked:
            self._user_invoked.add(disguise_id)
        else:
            self._user_invoked.discard(disguise_id)

    def _tier_for(self, disguise_id: int) -> VaultStore:
        if disguise_id in self._user_invoked:
            return self.user_tier
        return self.shared_tier

    # -- primitive operations -----------------------------------------------------

    def _put(self, entry: VaultEntry) -> None:
        self._tier_for(entry.disguise_id)._put(entry)

    def _replace(self, entry: VaultEntry) -> None:
        self._tier_for(entry.disguise_id)._replace(entry)

    def _delete(self, owner: Any, entry_ids: Iterable[int]) -> int:
        ids = list(entry_ids)
        count = self.user_tier._delete(owner, ids)
        count += self.shared_tier._delete(owner, ids)
        return count

    def _entries(self, owner: Any) -> list[VaultEntry]:
        # Reading merges both tiers; a locked user tier raises, and callers
        # that only need composition data use shared_entries_for instead.
        return self.user_tier._entries(owner) + self.shared_tier._entries(owner)

    def shared_entries_for(self, owner: Any, **filters: Any) -> list[VaultEntry]:
        """Entries reachable without user approval (the first tier only)."""
        return self.shared_tier.entries_for(owner, **filters)

    def owners(self) -> list[Any]:
        merged = dict.fromkeys(self.user_tier.owners())
        merged.update(dict.fromkeys(self.shared_tier.owners()))
        return list(merged)
