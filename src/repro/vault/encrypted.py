"""Encrypted vault wrapper: per-owner keys, explicit unlock, key escrow.

"The vault contents might be encrypted, and access might require explicit
approval by the user, who holds the private key" (paper §4.2). This store
wraps any inner :class:`~repro.vault.base.VaultStore`; entry *metadata*
(ids, seq, owner, epoch — needed for routing and ordering) stays in the
clear, while the entire entry body (including the payload holding original
data) is encrypted under the owner's key.

Reading an owner's entries requires the vault to be *unlocked* with that
owner's key — the programmatic stand-in for user approval. Keys may be
held directly or recovered through threshold escrow
(:mod:`repro.crypto.threshold`), reproducing footnote 1's lost-key story.
The global vault (owner ``None``) is never encrypted: it is the
"accessible to the disguising tool and application" tier.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Iterable

from repro.crypto.cipher import Ciphertext, SecretKey, decrypt, encrypt, encrypt_many
from repro.crypto.threshold import EscrowedKey
from repro.errors import VaultError
from repro.obs.trace import TRACER as _TRACER
from repro.vault.base import GLOBAL_OWNER, VaultStore
from repro.vault.entry import VaultEntry

__all__ = ["EncryptedVault"]


class EncryptedVault(VaultStore):
    """Encrypts per-owner entries at rest inside an inner store."""

    def __init__(self, inner: VaultStore) -> None:
        super().__init__()
        self.inner = inner
        self._keys: dict[Any, SecretKey] = {}  # registered (write) keys
        self._escrows: dict[Any, EscrowedKey] = {}
        self._unlocked: set[Any] = set()

    def register_metrics(self, registry: Any, prefix: str = "vault") -> None:
        # The encryption layer's own stats land under the public prefix;
        # the wrapped store (where journal appends/fsyncs happen) reports
        # under "<prefix>.inner" so both layers stay distinguishable.
        super().register_metrics(registry, prefix)
        if hasattr(self.inner, "register_metrics"):
            self.inner.register_metrics(registry, f"{prefix}.inner")

    # -- key management ----------------------------------------------------------

    def register_owner(
        self,
        owner: Any,
        key: SecretKey | None = None,
        escrow: EscrowedKey | None = None,
    ) -> SecretKey:
        """Provision *owner*'s vault key (generated if not supplied).

        The key is retained for writes (the disguising tool encrypts new
        entries as it applies disguises) but reads stay locked until
        :meth:`unlock`. An optional *escrow* records the threshold sharing
        used by :meth:`unlock_via_escrow`.
        """
        if owner is GLOBAL_OWNER:
            raise VaultError("the global vault tier is not encrypted")
        if key is None:
            key = SecretKey.generate()
        self._keys[owner] = key
        if escrow is not None:
            self._escrows[owner] = escrow
        return key

    def unlock(self, owner: Any, key: SecretKey) -> None:
        """Unlock *owner*'s vault for reading; wrong keys are rejected lazily
        (decryption authenticates every entry)."""
        self._keys[owner] = key
        self._unlocked.add(owner)

    def unlock_via_escrow(self, owner: Any, *consenting: str) -> None:
        """Recover the key from escrow shares and unlock (footnote 1)."""
        escrow = self._escrows.get(owner)
        if escrow is None:
            raise VaultError(f"no escrow registered for owner {owner!r}")
        self.unlock(owner, escrow.recover(*consenting))

    def lock(self, owner: Any) -> None:
        self._unlocked.discard(owner)

    def is_unlocked(self, owner: Any) -> bool:
        return owner is GLOBAL_OWNER or owner in self._unlocked

    def _key_for(self, owner: Any, *, writing: bool) -> SecretKey:
        key = self._keys.get(owner)
        if key is None:
            raise VaultError(
                f"owner {owner!r} has no registered vault key; call register_owner"
            )
        if not writing and owner not in self._unlocked:
            raise VaultError(
                f"vault of owner {owner!r} is locked; user approval (unlock) required"
            )
        return key

    # -- encryption plumbing ------------------------------------------------------

    def _seal(self, entry: VaultEntry) -> VaultEntry:
        if entry.owner is GLOBAL_OWNER:
            return entry
        key = self._key_for(entry.owner, writing=True)
        ciphertext = encrypt(key, entry.to_json().encode())
        return replace(
            entry,
            op="modify",  # neutral metadata; real op is inside the ciphertext
            payload={"ct": ciphertext.to_bytes().hex()},
        )

    def _seal_many(self, batch: list[VaultEntry]) -> list[VaultEntry]:
        """Seal a batch with one key/subkey setup per owner.

        Entries are grouped by owner and each group runs through
        :func:`~repro.crypto.cipher.encrypt_many`, which derives the
        owner's subkeys once and generates one keystream for the whole
        group instead of per entry. Entry order is preserved; global-tier
        entries pass through unencrypted as in :meth:`_seal`.
        """
        sealed: list[VaultEntry | None] = [None] * len(batch)
        by_owner: dict[Any, list[int]] = {}
        for i, entry in enumerate(batch):
            if entry.owner is GLOBAL_OWNER:
                sealed[i] = entry
            else:
                by_owner.setdefault(entry.owner, []).append(i)
        with _TRACER.span(
            "vault.encrypt", entries=len(batch), owners=len(by_owner)
        ):
            for owner, positions in by_owner.items():
                key = self._key_for(owner, writing=True)
                ciphertexts = encrypt_many(
                    key, [batch[i].to_json().encode() for i in positions]
                )
                for i, ciphertext in zip(positions, ciphertexts):
                    sealed[i] = replace(
                        batch[i],
                        op="modify",
                        payload={"ct": ciphertext.to_bytes().hex()},
                    )
        return sealed  # type: ignore[return-value]

    def _open(self, stored: VaultEntry) -> VaultEntry:
        if stored.owner is GLOBAL_OWNER:
            return stored
        key = self._key_for(stored.owner, writing=False)
        blob = bytes.fromhex(stored.payload["ct"])
        plaintext = decrypt(key, Ciphertext.from_bytes(blob))
        return VaultEntry.from_json(plaintext.decode())

    # -- primitive operations -------------------------------------------------------

    def _put(self, entry: VaultEntry) -> None:
        self.inner._put(self._seal(entry))

    def _put_many(self, entries: list[VaultEntry]) -> None:
        self.inner._put_many(self._seal_many(entries))

    def _replace(self, entry: VaultEntry) -> None:
        self.inner._replace(self._seal(entry))

    def _delete(self, owner: Any, entry_ids: Iterable[int]) -> int:
        return self.inner._delete(owner, entry_ids)

    def _entries(self, owner: Any) -> list[VaultEntry]:
        return [self._open(stored) for stored in self.inner._entries(owner)]

    def owners(self) -> list[Any]:
        return self.inner.owners()

    # -- metadata-only operations (no decryption, so no unlock needed) -----------

    def expire_before(self, epoch: int) -> int:
        """Expiry filters on the clear ``epoch`` metadata of sealed entries,
        so locked vaults can still be expired (the deployment's retention
        policy does not need user approval to *forget*)."""
        dropped = 0
        for owner in [GLOBAL_OWNER, *self.owners()]:
            stale = [
                stored.entry_id
                for stored in self.inner._entries(owner)
                if stored.epoch < epoch
            ]
            if stale:
                dropped += self.delete(owner, stale)
        return dropped

    def size(self) -> int:
        return self.inner.size()
