"""Vault store interface and shared filtering/expiry machinery.

"A vault is a storage location not accessible to application queries that
stores reveal functions for applied disguises" (paper §4.2). Concrete
deployments differ in where the bytes live and who can read them; they all
implement :class:`VaultStore`.

:class:`VaultStats` counts vault reads and writes — disguise composition
cost is dominated by vault traffic (§6), so the benchmarks report these.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import VaultError
from repro.obs.trace import TRACER as _TRACER
from repro.vault.entry import VaultEntry

__all__ = ["VaultStore", "VaultStats", "match_entry"]

GLOBAL_OWNER = None  # owner value routing to the global vault


@dataclass
class VaultStats:
    """Vault operation counters."""

    reads: int = 0
    writes: int = 0
    deletes: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes + self.deletes

    def snapshot(self) -> "VaultStats":
        return VaultStats(self.reads, self.writes, self.deletes)

    def delta(self, since: "VaultStats") -> "VaultStats":
        return VaultStats(
            self.reads - since.reads,
            self.writes - since.writes,
            self.deletes - since.deletes,
        )


def match_entry(
    entry: VaultEntry,
    disguise_id: int | None = None,
    table: str | None = None,
    op: str | None = None,
    before_epoch: int | None = None,
) -> bool:
    """Shared entry filter used by every store implementation."""
    if disguise_id is not None and entry.disguise_id != disguise_id:
        return False
    if table is not None and entry.table != table:
        return False
    if op is not None and entry.op != op:
        return False
    if before_epoch is not None and entry.epoch >= before_epoch:
        return False
    return True


class VaultStore:
    """Abstract vault: per-owner collections of :class:`VaultEntry`.

    ``owner`` is a user id, or ``None`` for the global vault. Stores that
    gate access (encrypted vaults) raise :class:`~repro.errors.VaultError`
    from read methods when the owner's vault is locked.
    """

    def __init__(self) -> None:
        self.stats = VaultStats()
        # One store serves every service worker; the primitive operations
        # and their stats bumps run under this reentrant mutex (reentrant
        # because compound operations like expire_before call the locked
        # primitives). Vault work is file/table appends — far too coarse
        # to need finer locking.
        self._vault_mu = threading.RLock()

    # -- abstract primitive operations -----------------------------------------

    def _put(self, entry: VaultEntry) -> None:
        raise NotImplementedError

    def _put_many(self, entries: list[VaultEntry]) -> None:
        # Stores with a batched backend (TableVault) override this.
        for entry in entries:
            self._put(entry)

    def _replace(self, entry: VaultEntry) -> None:
        raise NotImplementedError

    def _delete(self, owner: Any, entry_ids: Iterable[int]) -> int:
        raise NotImplementedError

    def _entries(self, owner: Any) -> list[VaultEntry]:
        raise NotImplementedError

    def owners(self) -> list[Any]:
        """All owners with a (possibly empty) vault, global excluded."""
        raise NotImplementedError

    def note_disguise(self, disguise_id: int, user_invoked: bool) -> None:
        """Hint from the engine about how a disguise was invoked.

        The base store ignores it; :class:`~repro.vault.multitier.
        MultiTierVault` uses it to route entries between tiers.
        """

    def register_metrics(self, registry: Any, prefix: str = "vault") -> None:
        """Expose vault counters as ``<prefix>.*`` gauges in *registry*.

        Wired by the :class:`~repro.core.engine.Disguiser` for whatever
        store it is given; wrapping stores (encryption, multi-tier)
        override to also register their inner layers.
        """
        registry.gauge(f"{prefix}.reads", lambda: self.stats.reads)
        registry.gauge(f"{prefix}.writes", lambda: self.stats.writes)
        registry.gauge(f"{prefix}.deletes", lambda: self.stats.deletes)

    # -- public API --------------------------------------------------------------

    def put(self, entry: VaultEntry) -> None:
        """Store a new entry in its owner's vault."""
        with _TRACER.span("vault.put"), self._vault_mu:
            self.stats.writes += 1
            self._put(entry)

    def put_many(self, entries: Iterable[VaultEntry]) -> None:
        """Store many new entries at once.

        Counts one write per entry (vault traffic stays proportional to
        entries, per §6 accounting) but lets table-backed stores append the
        batch with a single storage statement per owner.
        """
        batch = list(entries)
        if not batch:
            return
        with _TRACER.span("vault.put_many", entries=len(batch)), self._vault_mu:
            self.stats.writes += len(batch)
            self._put_many(batch)

    def replace(self, entry: VaultEntry) -> None:
        """Overwrite the stored entry with the same ``entry_id``."""
        with self._vault_mu:
            self.stats.writes += 1
            self._replace(entry)

    def delete(self, owner: Any, entry_ids: Iterable[int]) -> int:
        """Remove entries from *owner*'s vault; returns how many."""
        ids = list(entry_ids)
        with self._vault_mu:
            self.stats.deletes += len(ids)
            return self._delete(owner, ids)

    def entries_for(
        self,
        owner: Any,
        disguise_id: int | None = None,
        table: str | None = None,
        op: str | None = None,
        before_epoch: int | None = None,
    ) -> list[VaultEntry]:
        """Entries in *owner*'s vault matching the filters, in seq order."""
        with self._vault_mu:
            self.stats.reads += 1
            entries = [
                entry
                for entry in self._entries(owner)
                if match_entry(entry, disguise_id, table, op, before_epoch)
            ]
        entries.sort(key=lambda entry: entry.seq)
        return entries

    def all_entries(
        self, disguise_id: int | None = None
    ) -> list[VaultEntry]:
        """Entries across every vault, including the global one.

        Deployments that cannot enumerate user vaults (encrypted, third-
        party-held) raise; that is exactly the paper's point about a full
        ConfAnon reversal being infeasible under per-user vaults (§4.2).
        """
        out = []
        for owner in [GLOBAL_OWNER, *self.owners()]:
            out.extend(self.entries_for(owner, disguise_id=disguise_id))
        out.sort(key=lambda entry: entry.seq)
        return out

    def expire_before(self, epoch: int) -> int:
        """Drop every entry with ``epoch < epoch`` across all vaults.

        Expired entries make the corresponding disguises irreversible
        (§4.2: "Entries in a vault could also be configured to expire
        after some time; making the corresponding disguises irreversible").
        Returns the number dropped.
        """
        dropped = 0
        with self._vault_mu:
            for owner in [GLOBAL_OWNER, *self.owners()]:
                stale = [
                    entry.entry_id
                    for entry in self.entries_for(owner)
                    if entry.epoch < epoch
                ]
                if stale:
                    dropped += self.delete(owner, stale)
        return dropped

    def size(self) -> int:
        """Total entry count across all vaults (no stats impact)."""
        total = len(self._entries(GLOBAL_OWNER))
        for owner in self.owners():
            total += len(self._entries(owner))
        return total
