"""Vault entries: the persisted form of reveal functions.

"Reveal functions stored in vaults use the original and updated states of
objects touched by a reversible disguise to generate the necessary
operations to restore the original state" (paper §5). A
:class:`VaultEntry` is exactly that record: for each physical change a
disguise made, it stores enough of the pre-image to undo it.

Payload layout by operation:

=============  ==========================================================
``remove``     ``{"row": {...original row...}}``
``decorrelate``  ``{"column", "old", "new", "placeholder_table",
               "placeholder_pk"}``
``modify``     ``{"column", "old", "new"}``
=============  ==========================================================
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any

from repro.errors import VaultError

__all__ = ["VaultEntry", "OP_REMOVE", "OP_DECORRELATE", "OP_MODIFY"]

OP_REMOVE = "remove"
OP_DECORRELATE = "decorrelate"
OP_MODIFY = "modify"

_OPS = (OP_REMOVE, OP_DECORRELATE, OP_MODIFY)


def _encode_value(value: Any) -> Any:
    if isinstance(value, bytes):
        return {"$blob": value.hex()}
    return value


def _decode_value(value: Any) -> Any:
    if isinstance(value, dict) and "$blob" in value:
        return bytes.fromhex(value["$blob"])
    return value


def _encode_payload(payload: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in payload.items():
        if isinstance(value, dict):
            out[key] = {k: _encode_value(v) for k, v in value.items()}
        else:
            out[key] = _encode_value(value)
    return out


def _decode_payload(payload: dict[str, Any]) -> dict[str, Any]:
    out: dict[str, Any] = {}
    for key, value in payload.items():
        if isinstance(value, dict) and "$blob" not in value:
            out[key] = {k: _decode_value(v) for k, v in value.items()}
        else:
            out[key] = _decode_value(value)
    return out


@dataclass(frozen=True)
class VaultEntry:
    """One reveal record.

    ``seq`` totally orders physical changes across all disguises; reveal
    walks chains of entries on the same row in ``seq`` order. ``owner`` is
    the user id whose vault holds the entry (None routes to the global
    vault). ``epoch`` is the history epoch of the disguise application.
    """

    entry_id: int
    disguise_id: int
    seq: int
    epoch: int
    owner: Any
    table: str
    pk: Any
    op: str
    payload: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise VaultError(f"unknown vault op {self.op!r}")

    # -- convenience accessors --------------------------------------------------

    @property
    def column(self) -> str:
        return self.payload["column"]

    @property
    def old_value(self) -> Any:
        return self.payload["old"]

    @property
    def new_value(self) -> Any:
        return self.payload["new"]

    @property
    def removed_row(self) -> dict[str, Any]:
        return dict(self.payload["row"])

    @property
    def placeholder_table(self) -> str:
        return self.payload["placeholder_table"]

    @property
    def placeholder_pk(self) -> Any:
        return self.payload["placeholder_pk"]

    def with_payload(self, seq: int, **changes: Any) -> "VaultEntry":
        """A copy with an updated payload and a fresh sequence number.

        Used when a disguise's operation is re-executed during composition
        (the entry then reverses the *new* physical change).
        """
        payload = dict(self.payload)
        payload.update(changes)
        return replace(self, payload=payload, seq=seq)

    # -- serialization -----------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "entry_id": self.entry_id,
                "disguise_id": self.disguise_id,
                "seq": self.seq,
                "epoch": self.epoch,
                "owner": _encode_value(self.owner),
                "table": self.table,
                "pk": _encode_value(self.pk),
                "op": self.op,
                "payload": _encode_payload(self.payload),
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, document: str) -> "VaultEntry":
        try:
            data = json.loads(document)
        except json.JSONDecodeError as exc:
            raise VaultError(f"corrupt vault entry: {exc}") from None
        return cls(
            entry_id=data["entry_id"],
            disguise_id=data["disguise_id"],
            seq=data["seq"],
            epoch=data["epoch"],
            owner=_decode_value(data["owner"]),
            table=data["table"],
            pk=_decode_value(data["pk"]),
            op=data["op"],
            payload=_decode_payload(data["payload"]),
        )
