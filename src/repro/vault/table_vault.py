"""Vaults as per-user database tables — Edna's deployment model.

"Edna represents vaults as (currently unencrypted) per-user database
tables" (paper §5). Each owner gets a table ``_vault_u<owner>`` (the
global vault is ``_vault_global``) in a *vault database* — by default a
separate :class:`~repro.storage.database.Database` so application queries
cannot reach it ("a storage location not accessible to application
queries", §4.2), but callers may pass the application database to model
Edna's same-backend layout.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import VaultError
from repro.storage.database import Database
from repro.storage.schema import Column, TableSchema
from repro.storage.types import ColumnType
from repro.vault.base import GLOBAL_OWNER, VaultStore
from repro.vault.entry import VaultEntry

__all__ = ["TableVault"]

_PREFIX = "_vault_"


def _vault_table_schema(name: str) -> TableSchema:
    return TableSchema(
        name,
        [
            Column("entry_id", ColumnType.INTEGER, nullable=False),
            Column("seq", ColumnType.INTEGER, nullable=False),
            Column("body", ColumnType.TEXT, nullable=False),
        ],
        primary_key="entry_id",
    )


class TableVault(VaultStore):
    """Vault entries stored as rows of per-owner tables."""

    def __init__(self, db: Database | None = None) -> None:
        super().__init__()
        self.db = db if db is not None else Database()

    # -- table management ---------------------------------------------------------

    def _table_name(self, owner: Any) -> str:
        if owner is GLOBAL_OWNER:
            return _PREFIX + "global"
        token = str(owner)
        if not token.replace("-", "").replace("_", "").isalnum():
            raise VaultError(f"owner {owner!r} cannot name a vault table")
        return f"{_PREFIX}u{token}"

    def _ensure_table(self, owner: Any) -> str:
        name = self._table_name(owner)
        if not self.db.has_table(name):
            self.db.create_table(_vault_table_schema(name))
        return name

    # -- primitive operations --------------------------------------------------------

    def _put(self, entry: VaultEntry) -> None:
        name = self._ensure_table(entry.owner)
        if self.db.get(name, entry.entry_id) is not None:
            raise VaultError(f"duplicate vault entry id {entry.entry_id}")
        self.db.insert(
            name,
            {"entry_id": entry.entry_id, "seq": entry.seq, "body": entry.to_json()},
        )

    def _put_many(self, entries: list[VaultEntry]) -> None:
        groups: dict[str, list[VaultEntry]] = {}
        for entry in entries:
            groups.setdefault(self._ensure_table(entry.owner), []).append(entry)
        for name, group in groups.items():
            table = self.db.table(name)
            for entry in group:
                if table.rid_of(entry.entry_id) is not None:
                    raise VaultError(f"duplicate vault entry id {entry.entry_id}")
            self.db.insert_many(
                name,
                [
                    {
                        "entry_id": entry.entry_id,
                        "seq": entry.seq,
                        "body": entry.to_json(),
                    }
                    for entry in group
                ],
            )

    def _replace(self, entry: VaultEntry) -> None:
        name = self._ensure_table(entry.owner)
        if self.db.get(name, entry.entry_id) is None:
            raise VaultError(f"no vault entry {entry.entry_id} to replace")
        self.db.update_by_pk(
            name, entry.entry_id, {"seq": entry.seq, "body": entry.to_json()}
        )

    def _delete(self, owner: Any, entry_ids: Iterable[int]) -> int:
        name = self._table_name(owner)
        if not self.db.has_table(name):
            return 0
        count = 0
        for entry_id in entry_ids:
            if self.db.get(name, entry_id) is not None:
                self.db.delete_by_pk(name, entry_id)
                count += 1
        return count

    def _entries(self, owner: Any) -> list[VaultEntry]:
        name = self._table_name(owner)
        if not self.db.has_table(name):
            return []
        return [
            VaultEntry.from_json(row["body"]) for row in self.db.select(name)
        ]

    def owners(self) -> list[Any]:
        out = []
        for name in self.db.table_names:
            if name.startswith(_PREFIX + "u"):
                token = name[len(_PREFIX) + 1 :]
                out.append(int(token) if token.isdigit() else token)
        return out
