"""Offline-storage vault: one append-only journal file per owner.

This models the paper's "storing vaults in offline storage, which provides
a modicum of security, but makes access by the data disguising tool easy"
(§4.2). Each owner's file is a JSON-lines *journal*: a put appends one
entry line, a replace appends a superseding line for the same ``entry_id``
(last record wins on load), and a delete appends a tombstone line
``{"$del": [ids...]}``. Appending keeps every mutation O(delta) — the old
load-all + rewrite-all per put made a disguise writing N entries cost
O(N²) file bytes.

Dead records (superseded or tombstoned lines) accumulate until a
threshold-triggered compaction rewrites the file with only live entries
(atomic replace), or removes it when nothing is live. A per-owner
in-memory cache, hydrated once per owner per process, serves reads and
duplicate-id checks without re-reading the journal.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable
from urllib.parse import quote, unquote

from repro.errors import VaultError
from repro.storage import fsio
from repro.obs.trace import TRACER as _TRACER
from repro.vault.base import GLOBAL_OWNER, VaultStore
from repro.vault.entry import VaultEntry

__all__ = ["FileVault"]

_GLOBAL_KEY = "__global__"  # cache key for the GLOBAL_OWNER (None) vault


class FileVault(VaultStore):
    """Vault entries journaled under ``directory/owner-<id>.jsonl``.

    ``compact_threshold``: compaction triggers when an owner's journal
    holds more than this many dead records *and* the dead outnumber the
    live — so small vaults never pay a rewrite, and large ones amortize it.

    ``sync_appends``: fsync the journal after each append. A batched put
    still pays one fsync per owner group rather than one per entry, which
    is what makes the pipelined write path cheap under durability.
    """

    def __init__(
        self,
        directory: str | Path,
        compact_threshold: int = 64,
        sync_appends: bool = False,
    ) -> None:
        super().__init__()
        self.directory = fsio.as_path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.compact_threshold = compact_threshold
        self.sync_appends = sync_appends
        # Per-owner live entries, hydrated lazily from the journal once.
        self._cache: dict[str, dict[int, VaultEntry]] = {}
        # Per-owner count of dead journal records (superseded + tombstones).
        self._dead: dict[str, int] = {}
        self.compactions = 0  # diagnostic, read by tests and benchmarks
        self.syncs = 0  # fsyncs issued by _append (diagnostic)
        self.appends = 0  # journal appends issued by _append (diagnostic)

    def register_metrics(self, registry: Any, prefix: str = "vault") -> None:
        super().register_metrics(registry, prefix)
        registry.gauge(f"{prefix}.journal_appends", lambda: self.appends)
        registry.gauge(f"{prefix}.fsyncs", lambda: self.syncs)
        registry.gauge(f"{prefix}.compactions", lambda: self.compactions)

    def _key(self, owner: Any) -> str:
        return _GLOBAL_KEY if owner is GLOBAL_OWNER else str(owner)

    def _path(self, owner: Any) -> Path:
        if owner is GLOBAL_OWNER:
            return self.directory / "global.jsonl"
        # Percent-encode so any owner string maps to exactly one safe
        # filename (no separators, NULs, or traversal; ints stay as-is).
        token = quote(str(owner), safe="")
        return self.directory / f"owner-{token}.jsonl"

    def _legacy_path(self, owner: Any) -> Path | None:
        """Where the pre-encoding layout stored *owner*'s journal.

        Returns None when the raw token already matches the encoded one
        (nothing to migrate) or the old layout could never have written it
        (it rejected '/' and leading '.').
        """
        token = str(owner)
        if "/" in token or token.startswith("."):
            return None
        legacy = self.directory / f"owner-{token}.jsonl"
        return None if legacy == self._path(owner) else legacy

    def _migrate_legacy(self, owner: Any, path: Path) -> None:
        """Rename a legacy raw-token journal to its encoded filename."""
        if path.exists():
            return
        legacy = self._legacy_path(owner)
        if legacy is not None and legacy.exists():
            fsio.replace(legacy, path)

    # -- journal IO ---------------------------------------------------------------

    def _load(self, owner: Any) -> dict[int, VaultEntry]:
        """The owner's live entries, reading the journal only on first use."""
        key = self._key(owner)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        entries: dict[int, VaultEntry] = {}
        dead = 0
        path = self._path(owner)
        self._migrate_legacy(owner, path)
        if path.exists():
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    if line.startswith('{"$del"'):
                        doomed = json.loads(line)["$del"]
                        dead += 1
                        for entry_id in doomed:
                            if entries.pop(entry_id, None) is not None:
                                dead += 1
                        continue
                    entry = VaultEntry.from_json(line)
                    if entry.entry_id in entries:
                        dead += 1  # superseded by this replace record
                    entries[entry.entry_id] = entry
        self._cache[key] = entries
        self._dead[key] = dead
        return entries

    def _append(self, owner: Any, lines: list[str]) -> None:
        with _TRACER.span("vault.journal_append", lines=len(lines)), \
                self._path(owner).open("a", encoding="utf-8") as handle:
            handle.write("".join(line + "\n" for line in lines))
            self.appends += 1
            if self.sync_appends:
                handle.flush()
                fsio.fsync_handle(handle)
                self.syncs += 1

    def _maybe_compact(self, owner: Any) -> None:
        key = self._key(owner)
        dead = self._dead.get(key, 0)
        if dead > self.compact_threshold and dead > len(self._cache[key]):
            self.compact(owner)

    def compact(self, owner: Any) -> None:
        """Rewrite *owner*'s journal with live entries only (atomically)."""
        entries = self._load(owner)
        path = self._path(owner)
        if not entries:
            if path.exists():
                path.unlink()
            self._dead[self._key(owner)] = 0
            self.compactions += 1
            return
        tmp = path.with_suffix(path.suffix + ".tmp")
        with tmp.open("w", encoding="utf-8") as handle:
            for entry in sorted(entries.values(), key=lambda e: e.seq):
                handle.write(entry.to_json() + "\n")
        fsio.replace(tmp, path)
        self._dead[self._key(owner)] = 0
        self.compactions += 1

    # -- primitive operations -----------------------------------------------------

    def _put(self, entry: VaultEntry) -> None:
        entries = self._load(entry.owner)
        if entry.entry_id in entries:
            raise VaultError(f"duplicate vault entry id {entry.entry_id}")
        self._append(entry.owner, [entry.to_json()])
        entries[entry.entry_id] = entry

    def _put_many(self, batch: list[VaultEntry]) -> None:
        # Group by owner: one journal append (one open) per owner.
        by_owner: dict[str, list[VaultEntry]] = {}
        for entry in batch:
            by_owner.setdefault(self._key(entry.owner), []).append(entry)
        for group in by_owner.values():
            owner = group[0].owner
            entries = self._load(owner)
            for entry in group:
                if entry.entry_id in entries:
                    raise VaultError(f"duplicate vault entry id {entry.entry_id}")
            self._append(owner, [entry.to_json() for entry in group])
            for entry in group:
                entries[entry.entry_id] = entry

    def _replace(self, entry: VaultEntry) -> None:
        entries = self._load(entry.owner)
        if entry.entry_id not in entries:
            raise VaultError(f"no vault entry {entry.entry_id} to replace")
        self._append(entry.owner, [entry.to_json()])
        entries[entry.entry_id] = entry
        key = self._key(entry.owner)
        self._dead[key] = self._dead.get(key, 0) + 1
        self._maybe_compact(entry.owner)

    def _delete(self, owner: Any, entry_ids: Iterable[int]) -> int:
        entries = self._load(owner)
        doomed = [entry_id for entry_id in entry_ids if entry_id in entries]
        if not doomed:
            return 0
        self._append(owner, [json.dumps({"$del": doomed})])
        for entry_id in doomed:
            del entries[entry_id]
        key = self._key(owner)
        self._dead[key] = self._dead.get(key, 0) + 1 + len(doomed)
        self._maybe_compact(owner)
        return len(doomed)

    def _entries(self, owner: Any) -> list[VaultEntry]:
        return list(self._load(owner).values())

    def owners(self) -> list[Any]:
        out = []
        for path in self.directory.glob("owner-*.jsonl"):
            token = path.stem[len("owner-") :]
            # Only tokens the current encoder could have produced are
            # decoded; anything else is a legacy raw token (e.g. an owner
            # written by the pre-encoding layout containing '@' or '%')
            # and is taken literally rather than mangled by unquote.
            decoded = unquote(token)
            name = decoded if quote(decoded, safe="") == token else token
            out.append(int(name) if name.isdigit() else name)
        return out
