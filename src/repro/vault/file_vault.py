"""Offline-storage vault: one JSON-lines file per owner in a directory.

This models the paper's "storing vaults in offline storage, which provides
a modicum of security, but makes access by the data disguising tool easy"
(§4.2). Files are rewritten whole on mutation — vault sizes are small
(entries per user per disguise), so simplicity wins over incremental IO.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.errors import VaultError
from repro.vault.base import GLOBAL_OWNER, VaultStore
from repro.vault.entry import VaultEntry

__all__ = ["FileVault"]


class FileVault(VaultStore):
    """Vault entries persisted under ``directory/owner-<id>.jsonl``."""

    def __init__(self, directory: str | Path) -> None:
        super().__init__()
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, owner: Any) -> Path:
        if owner is GLOBAL_OWNER:
            return self.directory / "global.jsonl"
        token = str(owner)
        if "/" in token or token.startswith("."):
            raise VaultError(f"owner {owner!r} cannot name a vault file")
        return self.directory / f"owner-{token}.jsonl"

    def _load(self, owner: Any) -> dict[int, VaultEntry]:
        path = self._path(owner)
        if not path.exists():
            return {}
        entries: dict[int, VaultEntry] = {}
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    entry = VaultEntry.from_json(line)
                    entries[entry.entry_id] = entry
        return entries

    def _store(self, owner: Any, entries: dict[int, VaultEntry]) -> None:
        path = self._path(owner)
        if not entries:
            if path.exists():
                path.unlink()
            return
        with path.open("w", encoding="utf-8") as handle:
            for entry in sorted(entries.values(), key=lambda e: e.seq):
                handle.write(entry.to_json() + "\n")

    # -- primitive operations -----------------------------------------------------

    def _put(self, entry: VaultEntry) -> None:
        entries = self._load(entry.owner)
        if entry.entry_id in entries:
            raise VaultError(f"duplicate vault entry id {entry.entry_id}")
        entries[entry.entry_id] = entry
        self._store(entry.owner, entries)

    def _replace(self, entry: VaultEntry) -> None:
        entries = self._load(entry.owner)
        if entry.entry_id not in entries:
            raise VaultError(f"no vault entry {entry.entry_id} to replace")
        entries[entry.entry_id] = entry
        self._store(entry.owner, entries)

    def _delete(self, owner: Any, entry_ids: Iterable[int]) -> int:
        entries = self._load(owner)
        count = 0
        for entry_id in entry_ids:
            if entries.pop(entry_id, None) is not None:
                count += 1
        if count:
            self._store(owner, entries)
        return count

    def _entries(self, owner: Any) -> list[VaultEntry]:
        return list(self._load(owner).values())

    def owners(self) -> list[Any]:
        out = []
        for path in self.directory.glob("owner-*.jsonl"):
            token = path.stem[len("owner-") :]
            out.append(int(token) if token.isdigit() else token)
        return out
