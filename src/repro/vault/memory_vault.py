"""In-memory vault store: the baseline deployment for tests and benches."""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import VaultError
from repro.vault.base import GLOBAL_OWNER, VaultStore
from repro.vault.entry import VaultEntry

__all__ = ["MemoryVault"]


class MemoryVault(VaultStore):
    """Vault entries held in per-owner dicts in process memory."""

    def __init__(self) -> None:
        super().__init__()
        self._vaults: dict[Any, dict[int, VaultEntry]] = {}

    def _vault(self, owner: Any) -> dict[int, VaultEntry]:
        return self._vaults.setdefault(owner, {})

    def _put(self, entry: VaultEntry) -> None:
        vault = self._vault(entry.owner)
        if entry.entry_id in vault:
            raise VaultError(f"duplicate vault entry id {entry.entry_id}")
        vault[entry.entry_id] = entry

    def _replace(self, entry: VaultEntry) -> None:
        vault = self._vault(entry.owner)
        if entry.entry_id not in vault:
            raise VaultError(f"no vault entry {entry.entry_id} to replace")
        vault[entry.entry_id] = entry

    def _delete(self, owner: Any, entry_ids: Iterable[int]) -> int:
        vault = self._vault(owner)
        count = 0
        for entry_id in entry_ids:
            if vault.pop(entry_id, None) is not None:
                count += 1
        return count

    def _entries(self, owner: Any) -> list[VaultEntry]:
        return list(self._vaults.get(owner, {}).values())

    def owners(self) -> list[Any]:
        return [owner for owner in self._vaults if owner is not GLOBAL_OWNER]
