"""Vaults: reveal-function storage across deployment models (paper §4.2)."""

from repro.vault.base import VaultStats, VaultStore
from repro.vault.encrypted import EncryptedVault
from repro.vault.entry import OP_DECORRELATE, OP_MODIFY, OP_REMOVE, VaultEntry
from repro.vault.file_vault import FileVault
from repro.vault.memory_vault import MemoryVault
from repro.vault.multitier import MultiTierVault
from repro.vault.table_vault import TableVault

__all__ = [
    "VaultStore",
    "VaultStats",
    "VaultEntry",
    "OP_REMOVE",
    "OP_DECORRELATE",
    "OP_MODIFY",
    "MemoryVault",
    "TableVault",
    "FileVault",
    "EncryptedVault",
    "MultiTierVault",
]
