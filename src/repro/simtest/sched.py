"""Cooperative step scheduler: a seed fully determines the interleaving.

Real :class:`threading.Thread` objects run the real worker-pool code,
but only one simulated thread executes at a time. Each thread owns a
gate semaphore; the driver (the test process's main thread) releases
exactly one gate per step and then blocks until that thread parks again
— at a declared yield point (:meth:`StepScheduler.tick`), a condition
wait (:meth:`wait_on`), a sleep, or exit. Which runnable thread runs
next is drawn from a seeded RNG, so the whole interleaving replays from
the seed alone.

Blocking is virtualized: ``wait_on`` releases the caller's real
condition lock while the thread is parked and reacquires it before
returning (or before raising :class:`~repro.simtest.clock.PowerCut`),
so the surrounding ``with cond:`` blocks stay balanced. Timeouts are
deadlines on the virtual clock; when nothing is runnable the scheduler
jumps time to the earliest deadline. A crash releases every gate with
the ``dead`` flag set, so parked threads unwind via ``PowerCut``.

The shrinker at the bottom is plain delta debugging over a
:class:`SimPlan` — the pre-generated workload script — not over the RNG
stream: the plan is drawn up front from one ``Random(seed)`` and the
scheduler draws from an independent stream, so deleting a plan event
never shifts the scheduling decisions of the events that remain.
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable

from repro.simtest.clock import PowerCut

__all__ = [
    "PlannedEvent",
    "SchedulerStuck",
    "SimPlan",
    "SimThreadHandle",
    "StepScheduler",
    "shrink",
]

_READY = "ready"
_BLOCKED = "blocked"
_DONE = "done"


class SchedulerStuck(RuntimeError):
    """No thread is runnable, no deadline is pending, and the driver is
    still waiting for progress — a genuine deadlock in the simulated
    world (or a missing notify)."""


class _SimThread:
    __slots__ = (
        "name",
        "gate",
        "state",
        "blocked_cond",
        "deadline",
        "last_point",
        "error",
        "real",
    )

    def __init__(self, name: str) -> None:
        self.name = name
        self.gate = threading.Semaphore(0)
        self.state = _READY
        self.blocked_cond: threading.Condition | None = None
        self.deadline: float | None = None
        self.last_point = "start"
        self.error: str | None = None
        self.real: threading.Thread | None = None


class SimThreadHandle:
    """Thread-like facade returned by ``clock.spawn`` under simulation.

    ``join`` pumps the scheduler until the thread exits, so unmodified
    shutdown paths (``WorkerPool.stop`` joining its workers from the
    driver) drive the simulation instead of deadlocking it.
    """

    def __init__(self, sim: _SimThread, sched: "StepScheduler") -> None:
        self._sim = sim
        self._sched = sched
        self.name = sim.name

    def is_alive(self) -> bool:
        return self._sim.state != _DONE

    def join(self, timeout: float | None = None) -> None:
        self._sched.join_thread(self._sim, timeout)


class StepScheduler:
    """Serializes simulated threads; one :meth:`step` = one quantum."""

    def __init__(self, rng: random.Random, now: float = 0.0) -> None:
        self.rng = rng
        self.now = now
        self.steps = 0
        self.dead = False
        self.threads: list[_SimThread] = []
        self._by_ident: dict[int, _SimThread] = {}
        self._driver = threading.Semaphore(0)
        self.trace: list[str] = []

    # -- thread side -------------------------------------------------------------

    def spawn(self, target: Callable[[], None], name: str) -> SimThreadHandle:
        sim = _SimThread(name)

        def run() -> None:
            self._by_ident[threading.get_ident()] = sim
            sim.gate.acquire()  # wait to be scheduled for the first time
            try:
                if not self.dead:
                    target()
            except PowerCut:
                pass
            except BaseException as exc:  # noqa: BLE001 - recorded, not hidden
                sim.error = f"{type(exc).__name__}: {exc}"
                self.trace.append(f"!thread {sim.name} died: {sim.error}")
            finally:
                sim.state = _DONE
                self._by_ident.pop(threading.get_ident(), None)
                self._driver.release()

        sim.real = threading.Thread(target=run, name=name, daemon=True)
        self.threads.append(sim)
        self.trace.append(f"spawn {name}")
        sim.real.start()
        return SimThreadHandle(sim, self)

    def _current(self) -> _SimThread | None:
        return self._by_ident.get(threading.get_ident())

    def _park(self, sim: _SimThread, origin: str) -> None:
        """Hand control back to the driver and wait to be rescheduled."""
        self._driver.release()
        sim.gate.acquire()
        if self.dead:
            raise PowerCut(origin)

    def tick(self, point: str, detail: str = "") -> None:
        """Declared yield point; a no-op for driver/unmanaged threads."""
        sim = self._current()
        if sim is None:
            return
        if self.dead:
            raise PowerCut(point)
        sim.last_point = f"{point}({detail})" if detail else point
        sim.state = _READY
        self._park(sim, point)

    def wait_on(self, cond: threading.Condition, timeout: float | None) -> bool:
        """Condition wait. The caller holds ``cond``; we release it while
        parked and reacquire before returning or raising, keeping the
        caller's ``with cond:`` block balanced either way."""
        sim = self._current()
        if sim is None:
            return self._driver_wait(cond, timeout)
        if self.dead:
            raise PowerCut("wait")
        sim.last_point = "cond.wait"
        sim.state = _BLOCKED
        sim.blocked_cond = cond
        sim.deadline = None if timeout is None else self.now + max(0.0, timeout)
        cond.release()
        try:
            self._park(sim, "wait")
        finally:
            cond.acquire()
            sim.blocked_cond = None
            sim.deadline = None
        return True

    def sleep(self, seconds: float) -> None:
        sim = self._current()
        if sim is None:
            # Driver sleep means "let the world run for a while": advance
            # virtual time and pump one step so poll loops built on
            # sleep() make progress instead of spinning. With no live
            # threads (boot, post-shutdown) there is nothing to pump.
            self.now += max(0.0, seconds)
            if any(sim.state != _DONE for sim in self.threads):
                self.step()
            return
        if self.dead:
            raise PowerCut("sleep")
        sim.last_point = f"sleep({seconds:g})"
        sim.state = _BLOCKED
        sim.blocked_cond = None
        sim.deadline = self.now + max(0.0, seconds)
        self._park(sim, "sleep")

    def notify_all(self, cond: threading.Condition) -> None:
        """Wake every thread blocked on ``cond``; they reacquire the
        condition lock themselves when next scheduled. Safe to call from
        the driver, a simulated thread, or a thread unwinding after a
        crash (wakeups on a dead world are moot)."""
        for sim in self.threads:
            if sim.state == _BLOCKED and sim.blocked_cond is cond:
                sim.state = _READY

    # -- driver side -------------------------------------------------------------

    def runnable(self) -> list[_SimThread]:
        return [sim for sim in self.threads if sim.state == _READY]

    def step(self) -> bool:
        """Run one thread to its next yield point. Returns ``False`` when
        no thread is runnable even after advancing virtual time."""
        ready = self.runnable()
        if not ready:
            if not self._advance_time():
                return False
            ready = self.runnable()
            if not ready:
                return False
        sim = ready[self.rng.randrange(len(ready))] if len(ready) > 1 else ready[0]
        self.steps += 1
        self.trace.append(f"{self.steps} t={self.now:.3f} {sim.name} @ {sim.last_point}")
        sim.gate.release()
        self._driver.acquire()
        return True

    def _advance_time(self) -> bool:
        deadlines = [
            sim.deadline
            for sim in self.threads
            if sim.state == _BLOCKED and sim.deadline is not None
        ]
        if not deadlines:
            return False
        target = min(deadlines)
        if target > self.now:
            self.now = target
            self.trace.append(f"advance t={self.now:.3f}")
        for sim in self.threads:
            if (
                sim.state == _BLOCKED
                and sim.deadline is not None
                and sim.deadline <= self.now
            ):
                sim.state = _READY
        return True

    def _driver_wait(self, cond: threading.Condition, timeout: float | None) -> bool:
        """The driver blocked on a condition (``queue.wait_idle`` and
        friends): release it, pump one step, reacquire, and return as a
        spurious wakeup — every wait site in the stack re-checks its
        predicate in a loop, so progress resumes naturally."""
        cond.release()
        try:
            if not self.step():
                if timeout is None:
                    raise SchedulerStuck(
                        f"driver waits forever but nothing can run ({self.describe()})"
                    )
                self.now += max(0.0, timeout)
        finally:
            cond.acquire()
        return True

    def join_thread(self, sim: _SimThread, timeout: float | None = None) -> None:
        deadline = None if timeout is None else self.now + timeout
        while sim.state != _DONE:
            if deadline is not None and self.now > deadline:
                return
            if not self.step():
                raise SchedulerStuck(
                    f"joining {sim.name} but nothing can run ({self.describe()})"
                )
        if sim.real is not None:
            sim.real.join(timeout=5.0)

    def describe(self) -> str:
        states = ", ".join(
            f"{sim.name}:{sim.state}@{sim.last_point}" for sim in self.threads
        )
        return f"step={self.steps} t={self.now:.3f} [{states}]"

    def crash(self) -> None:
        """Power cut: every parked thread is released with ``dead`` set
        and unwinds via :class:`PowerCut`; blocks until all are gone so
        the next epoch starts from a quiescent process."""
        self.dead = True
        self.trace.append(f"crash @ step {self.steps} t={self.now:.3f}")
        for sim in self.threads:
            if sim.state != _DONE:
                # Generous releases: a thread may consume one at its
                # park site and more are harmless (semaphore, not event).
                sim.gate.release()
                sim.gate.release()
        for sim in self.threads:
            if sim.real is not None:
                sim.real.join(timeout=10.0)
                if sim.real.is_alive():  # pragma: no cover - diagnostics
                    raise SchedulerStuck(f"thread {sim.name} survived the power cut")
            sim.state = _DONE
        # Drain driver-handshake releases left by the dying threads.
        while self._driver.acquire(blocking=False):
            pass


# -- simulation plans and the shrinker ------------------------------------------


@dataclass(frozen=True)
class PlannedEvent:
    """One scripted driver action: ``at`` is the scheduler step count at
    (or after) which it fires. ``kind`` is ``apply``, ``reveal``, or
    ``crash``; ``payload`` carries kind-specific fields (spec name, uid
    pick, whether recovery also checkpoints)."""

    at: int
    kind: str
    payload: tuple[tuple[str, Any], ...] = ()

    def arg(self, key: str, default: Any = None) -> Any:
        for name, value in self.payload:
            if name == key:
                return value
        return default


@dataclass(frozen=True)
class SimPlan:
    """The full workload script for one run: how many scheduler steps to
    take and which driver events fire along the way. Generated up front
    from ``Random(seed)`` so the shrinker can delete events without
    perturbing anything else."""

    steps: int
    events: tuple[PlannedEvent, ...] = ()

    def truncated(self, steps: int) -> "SimPlan":
        return SimPlan(
            steps=steps,
            events=tuple(event for event in self.events if event.at <= steps),
        )

    def without(self, index: int) -> "SimPlan":
        kept = tuple(
            event for position, event in enumerate(self.events) if position != index
        )
        return replace(self, events=kept)


def shrink(
    plan: SimPlan,
    still_fails: Callable[[SimPlan], bool],
    max_probes: int = 200,
) -> SimPlan:
    """Delta-debug ``plan`` to a smaller plan for which ``still_fails``
    holds. Two passes, repeated to fixpoint: binary-search the smallest
    failing step budget, then greedily drop events. ``still_fails`` must
    be deterministic (it replays the simulation), which is the whole
    point of the harness."""
    probes = 0

    def check(candidate: SimPlan) -> bool:
        nonlocal probes
        probes += 1
        return still_fails(candidate)

    best = plan
    improved = True
    while improved and probes < max_probes:
        improved = False
        # Pass 1: smallest failing step budget in [1, best.steps].
        low, high = 1, best.steps
        while low < high and probes < max_probes:
            mid = (low + high) // 2
            candidate = best.truncated(mid)
            if check(candidate):
                high = mid
            else:
                low = mid + 1
        if high < best.steps:
            best = best.truncated(high)
            improved = True
        # Pass 2: drop events one at a time (later events first — they
        # are most likely to be dead weight after truncation).
        index = len(best.events) - 1
        while index >= 0 and probes < max_probes:
            candidate = best.without(index)
            if candidate.events != best.events and check(candidate):
                best = candidate
                improved = True
            index -= 1
    return best
