"""In-memory filesystem with power-cut semantics and seeded fault plans.

Models exactly the surface :mod:`repro.storage.wal`,
:mod:`repro.storage.persist`, :mod:`repro.vault.file_vault`, and
:mod:`repro.service.queue` use — ``Path.open`` in r/rb/w/wb/a/ab/rb+
modes, ``exists``/``read_bytes``/``unlink``/``mkdir``/``glob``, handle
``write``/``flush``/``truncate``/iteration, ``os.fsync``,
``os.replace``, and directory fsync — dispatched through
:mod:`repro.storage.fsio` so production code runs unmodified on either
substrate.

Durability model (pragmatic ext4-ish, the one the stack is written
against):

* each inode tracks ``durable`` (the bytes as of its last fsync) next
  to ``data`` (the cache); fsyncing a file also makes its current
  directory entry durable;
* ``replace``/``unlink`` are atomic metadata ops that stay *pending*
  until the containing directory is fsynced — at a crash each pending
  op independently survives or not (a seeded coin), which yields
  reordered-rename states for free;
* at a crash, data appended since the last fsync survives only as a
  contiguous prefix whose length the fault plan picks — including every
  torn-byte position — and anything else is lost. Bytes are never
  scribbled mid-file by default: the WAL's CRC framing treats mid-log
  damage as fatal corruption (by design), so random scribbles would
  drown real bugs in expected ``WalCorruptionError`` noise;
* an optional EIO storm makes fsync raise ``OSError(EIO)`` at a seeded
  rate (off by default).

:meth:`SimFs.crash` freezes the world (every later op raises
:class:`~repro.simtest.clock.PowerCut`, killing leftover threads) and
returns a *new* ``SimFs`` holding only what survived — the "power-cut
then recover" operator.
"""

from __future__ import annotations

import errno
import fnmatch
import posixpath
import random
from typing import Any, Iterator

from repro.simtest.clock import PowerCut

__all__ = ["FaultPlan", "SimFs", "SimPath"]


class FaultPlan:
    """Seeded crash-fault decisions. One plan serves a whole run (the
    RNG advances across crashes), so a seed determines every fault."""

    def __init__(
        self,
        rng: random.Random,
        p_keep_all: float = 0.5,
        p_meta_survive: float = 0.5,
        eio_rate: float = 0.0,
    ) -> None:
        self.rng = rng
        self.p_keep_all = p_keep_all
        self.p_meta_survive = p_meta_survive
        self.eio_rate = eio_rate

    def kept_extension(self, appended: int) -> int:
        """How many of ``appended`` un-fsynced bytes survive the crash
        (a contiguous prefix; 0..appended inclusive, so every torn-write
        byte position is reachable)."""
        if appended <= 0:
            return 0
        if self.rng.random() < self.p_keep_all:
            return appended
        return self.rng.randint(0, appended)

    def op_survives(self) -> bool:
        """Does a pending (un-dir-fsynced) rename/unlink hit the disk?"""
        return self.rng.random() < self.p_meta_survive

    def maybe_eio(self, op: str, path: str) -> None:
        if self.eio_rate > 0.0 and self.rng.random() < self.eio_rate:
            raise OSError(errno.EIO, f"simulated I/O error during {op}", path)


class _Inode:
    __slots__ = ("data", "durable")

    def __init__(self, data: bytes = b"", durable: bytes | None = None) -> None:
        self.data = bytearray(data)
        self.durable = data if durable is None else durable

    def crash_content(self, plan: FaultPlan) -> bytes:
        """What this inode holds after a power cut."""
        data = bytes(self.data)
        if data == self.durable:
            return data
        if data[: len(self.durable)] == self.durable:
            # Pure append since the last fsync: a plan-chosen prefix of
            # the new suffix survives (torn write).
            extension = data[len(self.durable) :]
            return self.durable + extension[: plan.kept_extension(len(extension))]
        # Diverged (overwrite/truncate below the durable watermark):
        # model the metadata+data update as one atom that either hit the
        # disk or didn't.
        return data if plan.op_survives() else self.durable


class SimFs:
    """The in-memory filesystem; hand out roots via :meth:`path`."""

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan or FaultPlan(random.Random(0))
        self.dead = False
        self._names: dict[str, _Inode] = {}
        self._durable_names: dict[str, _Inode] = {}
        self._dirs: set[str] = {"/"}
        #: Metadata ops applied to the cache but not yet dir-fsynced:
        #: ("replace", src, dst, inode) | ("unlink", name, None, inode).
        self._pending: list[tuple[str, str, str | None, _Inode]] = []

    # -- public surface ----------------------------------------------------------

    def path(self, raw: str) -> "SimPath":
        return SimPath(self, _norm(raw))

    def crash(self) -> "SimFs":
        """Power cut: freeze this world and return the survivor."""
        survivor_names = dict(self._durable_names)
        for kind, src, dst, inode in self._pending:
            if not self.plan.op_survives():
                continue
            if kind == "replace":
                survivor_names.pop(src, None)
                survivor_names[dst] = inode  # type: ignore[index]
            else:  # unlink
                survivor_names.pop(src, None)
        self.dead = True
        fresh = SimFs(self.plan)
        fresh._dirs = set(self._dirs)
        for name in sorted(survivor_names):
            content = survivor_names[name].crash_content(self.plan)
            fresh._names[name] = _Inode(content)
            fresh._durable_names[name] = fresh._names[name]
        return fresh

    def dump(self) -> dict[str, bytes]:
        """Cache view of every file (debugging/tests)."""
        return {name: bytes(ino.data) for name, ino in sorted(self._names.items())}

    # -- operations (called via SimPath / fsio) ----------------------------------

    def _check_alive(self, op: str) -> None:
        if self.dead:
            raise PowerCut(f"simfs.{op}")

    def _exists(self, name: str) -> bool:
        self._check_alive("exists")
        return name in self._names

    def _read_bytes(self, name: str) -> bytes:
        self._check_alive("read")
        inode = self._names.get(name)
        if inode is None:
            raise FileNotFoundError(errno.ENOENT, "no such file", name)
        return bytes(inode.data)

    def _mkdir(self, name: str, parents: bool, exist_ok: bool) -> None:
        self._check_alive("mkdir")
        if name in self._dirs:
            if not exist_ok:
                raise FileExistsError(errno.EEXIST, "directory exists", name)
            return
        parent = posixpath.dirname(name) or "/"
        if parent not in self._dirs:
            if not parents:
                raise FileNotFoundError(errno.ENOENT, "no parent directory", name)
            self._mkdir(parent, parents=True, exist_ok=True)
        self._dirs.add(name)

    def _glob(self, directory: str, pattern: str) -> list["SimPath"]:
        self._check_alive("glob")
        prefix = directory.rstrip("/") + "/"
        out = []
        for name in sorted(self._names):
            if name.startswith(prefix) and "/" not in name[len(prefix) :]:
                if fnmatch.fnmatchcase(name[len(prefix) :], pattern):
                    out.append(SimPath(self, name))
        return out

    def _unlink(self, name: str) -> None:
        self._check_alive("unlink")
        inode = self._names.pop(name, None)
        if inode is None:
            raise FileNotFoundError(errno.ENOENT, "no such file", name)
        self._pending.append(("unlink", name, None, inode))

    def _replace(self, src: str, dst: str) -> None:
        self._check_alive("replace")
        inode = self._names.pop(src, None)
        if inode is None:
            raise FileNotFoundError(errno.ENOENT, "no such file", src)
        self._names[dst] = inode
        self._pending.append(("replace", src, dst, inode))

    def _open(self, name: str, mode: str, encoding: str | None) -> "_SimHandle":
        self._check_alive("open")
        text = "b" not in mode
        base = mode.replace("b", "")
        inode = self._names.get(name)
        if base in ("r", "r+"):
            if inode is None:
                raise FileNotFoundError(errno.ENOENT, "no such file", name)
        elif base == "w":
            inode = _Inode()
            self._names[name] = inode
        elif base == "a":
            if inode is None:
                inode = _Inode()
                self._names[name] = inode
        else:
            raise ValueError(f"simfs does not model open mode {mode!r}")
        writable = base != "r"
        return _SimHandle(
            self,
            name,
            inode,
            append=(base == "a"),
            writable=writable,
            readable=(base in ("r", "r+")),
            text=text,
            encoding=encoding or "utf-8",
        )

    def _fsync_file(self, name: str, inode: _Inode) -> None:
        self._check_alive("fsync")
        self.plan.maybe_eio("fsync", name)
        inode.durable = bytes(inode.data)
        # Pragmatic rule: fsyncing a file also persists its dentry (ext4
        # journals the creation with the data; the stack relies on this
        # the way most real systems do).
        if self._names.get(name) is inode:
            self._durable_names[name] = inode

    def fsync_dir(self, directory: str) -> None:
        self._check_alive("fsync_dir")
        directory = _norm(directory)
        self.plan.maybe_eio("fsync_dir", directory)
        prefix = directory.rstrip("/") + "/"
        kept = []
        for op in self._pending:
            kind, src, dst, inode = op
            target = dst if kind == "replace" else src
            if not (target or src).startswith(prefix):
                kept.append(op)
                continue
            if kind == "replace":
                self._durable_names.pop(src, None)
                self._durable_names[dst] = inode  # type: ignore[index]
            else:
                self._durable_names.pop(src, None)
        self._pending = kept


class _SimHandle:
    """File handle over a :class:`_Inode`; ``sim_fsync`` is the hook
    :func:`repro.storage.fsio.fsync_handle` dispatches on."""

    def __init__(
        self,
        fs: SimFs,
        name: str,
        inode: _Inode,
        append: bool,
        writable: bool,
        readable: bool,
        text: bool,
        encoding: str,
    ) -> None:
        self._fs = fs
        self._name = name
        self._inode = inode
        self._append = append
        self._writable = writable
        self._readable = readable
        self._text = text
        self._encoding = encoding
        self._pos = 0
        self.closed = False

    # -- writing -----------------------------------------------------------------

    def write(self, data: Any) -> int:
        self._fs._check_alive("write")
        if not self._writable:
            raise OSError("handle not open for writing")
        raw = data.encode(self._encoding) if self._text else bytes(data)
        buf = self._inode.data
        if self._append:
            buf.extend(raw)
            self._pos = len(buf)
        else:
            end = self._pos + len(raw)
            if end > len(buf):
                buf.extend(b"\x00" * (end - len(buf)))
            buf[self._pos : end] = raw
            self._pos = end
        return len(data)

    def truncate(self, size: int | None = None) -> int:
        self._fs._check_alive("truncate")
        size = self._pos if size is None else int(size)
        del self._inode.data[size:]
        return size

    def flush(self) -> None:
        if not self.closed:
            self._fs._check_alive("flush")

    def sim_fsync(self) -> None:
        self._fs._fsync_file(self._name, self._inode)

    # -- reading -----------------------------------------------------------------

    def read(self, size: int = -1) -> Any:
        self._fs._check_alive("read")
        data = bytes(self._inode.data)
        chunk = data[self._pos :] if size < 0 else data[self._pos : self._pos + size]
        self._pos += len(chunk)
        return chunk.decode(self._encoding) if self._text else chunk

    def readline(self) -> Any:
        self._fs._check_alive("read")
        data = bytes(self._inode.data)
        end = data.find(b"\n", self._pos)
        end = len(data) if end < 0 else end + 1
        chunk = data[self._pos : end]
        self._pos = end
        return chunk.decode(self._encoding) if self._text else chunk

    def __iter__(self) -> Iterator[Any]:
        while True:
            line = self.readline()
            if not line:
                return
            yield line

    # -- lifecycle ---------------------------------------------------------------

    def close(self) -> None:
        self.closed = True

    def __enter__(self) -> "_SimHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def _norm(raw: str) -> str:
    name = posixpath.normpath(str(raw))
    if not name.startswith("/"):
        name = "/" + name
    return name


class SimPath:
    """``pathlib.Path`` lookalike bound to a :class:`SimFs`.

    Implements only the surface the storage stack uses; anything else
    raises ``AttributeError`` loudly rather than touching the real disk.
    ``fsio.as_path`` recognizes instances via ``_is_simpath`` without
    importing this module.
    """

    _is_simpath = True
    __slots__ = ("fs", "_s")

    def __init__(self, fs: SimFs, raw: str) -> None:
        self.fs = fs
        self._s = _norm(raw)

    # -- pure path algebra -------------------------------------------------------

    def __str__(self) -> str:
        return self._s

    def __repr__(self) -> str:
        return f"SimPath({self._s!r})"

    def __eq__(self, other: Any) -> bool:
        return (
            isinstance(other, SimPath) and other.fs is self.fs and other._s == self._s
        )

    def __hash__(self) -> int:
        return hash((id(self.fs), self._s))

    def __truediv__(self, part: Any) -> "SimPath":
        return SimPath(self.fs, posixpath.join(self._s, str(part)))

    @property
    def name(self) -> str:
        return posixpath.basename(self._s)

    @property
    def stem(self) -> str:
        base = self.name
        dot = base.rfind(".")
        return base if dot <= 0 else base[:dot]

    @property
    def suffix(self) -> str:
        base = self.name
        dot = base.rfind(".")
        return "" if dot <= 0 else base[dot:]

    @property
    def parent(self) -> "SimPath":
        return SimPath(self.fs, posixpath.dirname(self._s) or "/")

    def with_name(self, name: str) -> "SimPath":
        return self.parent / name

    def with_suffix(self, suffix: str) -> "SimPath":
        return self.parent / (self.stem + suffix)

    # -- filesystem operations ---------------------------------------------------

    def exists(self) -> bool:
        return self.fs._exists(self._s)

    def read_bytes(self) -> bytes:
        return self.fs._read_bytes(self._s)

    def read_text(self, encoding: str = "utf-8") -> str:
        return self.fs._read_bytes(self._s).decode(encoding)

    def open(self, mode: str = "r", encoding: str | None = None) -> _SimHandle:
        return self.fs._open(self._s, mode, encoding)

    def unlink(self, missing_ok: bool = False) -> None:
        if missing_ok and not self.fs._exists(self._s):
            return
        self.fs._unlink(self._s)

    def mkdir(self, parents: bool = False, exist_ok: bool = False) -> None:
        self.fs._mkdir(self._s, parents=parents, exist_ok=exist_ok)

    def glob(self, pattern: str) -> list["SimPath"]:
        return self.fs._glob(self._s, pattern)

    def replace_to(self, dst: Any) -> None:
        """``os.replace(self, dst)`` — dispatched from fsio."""
        self.fs._replace(self._s, _norm(str(dst)))
