"""The model-checking oracle: disguise invariants over recovered state.

The oracle holds a dict-based model of the world — the baseline table
contents captured before any disguise ran — and checks the real system
against it at two kinds of barrier:

* **after every recovery** (:meth:`Oracle.check_recovery`): the database
  passes FK/integrity checks; every job the driver saw acked before the
  crash is still DONE with the same result (no acked job lost); an acked
  apply's job-token binding is present (the crash dedupe the executor
  relies on) and an acked reveal's disguise is inactive; and every vault
  entry belongs to an *active* disguise — entries for a revealed
  disguise must have been consumed, and entries whose disguise id was
  never committed are tolerated as compensation orphans (the vault
  journals durably *inside* the transaction, so a crash between the
  vault append and the WAL commit legitimately strands them);
* **at end of run** (:meth:`Oracle.check_end`): after draining the queue
  and revealing every active disguise, apply∘reveal must be the
  identity — every application table matches the baseline row-for-row
  (the paper's "the owner can always be made whole" claim), and the
  vault holds nothing but orphans.

Checks return :class:`Violation` lists instead of raising, so one run
reports every broken invariant and the harness can attach the schedule
trace to each.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError

__all__ = ["Oracle", "Violation", "snapshot_tables"]

Rows = dict[Any, dict[str, Any]]
Tables = dict[str, Rows]


@dataclass(frozen=True)
class Violation:
    """One broken invariant: which check, and what it saw."""

    check: str
    message: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


def snapshot_tables(db: Any) -> Tables:
    """``{table: {pk: row}}`` for every non-system table of *db*."""
    out: Tables = {}
    for name in db.table_names:
        if name.startswith("_"):
            continue
        table = db.table(name)
        pk = table.schema.primary_key
        out[name] = {row[pk]: dict(row) for row in table.rows()}
    return out


class Oracle:
    """Invariant checker bound to one baseline snapshot."""

    def __init__(self, baseline: Tables) -> None:
        self.baseline = baseline

    @classmethod
    def of(cls, db: Any) -> "Oracle":
        return cls(snapshot_tables(db))

    # -- recovery-time checks ----------------------------------------------------

    def check_recovery(
        self,
        db: Any,
        history: Any,
        vault: Any,
        queue: Any,
        acked: dict[int, dict[str, Any]],
    ) -> list[Violation]:
        """Invariants that must hold the moment a crashed world recovers.

        ``acked`` maps job id -> ``{"kind", "payload", "result"}`` for
        every job the driver observed DONE before the power cut.
        """
        out: list[Violation] = []
        out.extend(self._check_integrity(db))
        known = {record.did: record for record in history.records()}
        for job_id, info in sorted(acked.items()):
            try:
                job = queue.get(job_id)
            except ReproError:
                out.append(
                    Violation(
                        "acked-job-lost",
                        f"job {job_id} was acked before the crash but is "
                        f"missing from the recovered journal",
                    )
                )
                continue
            if job.state != "done":
                out.append(
                    Violation(
                        "acked-job-lost",
                        f"job {job_id} was acked before the crash but "
                        f"recovered as {job.state!r}",
                    )
                )
                continue
            result = info.get("result") or {}
            kind = info.get("kind")
            if kind == "apply":
                bound = history.job_applied(f"job-{job_id}")
                if bound is None:
                    out.append(
                        Violation(
                            "apply-binding-lost",
                            f"acked apply job {job_id} has no durable "
                            f"job-token binding (its effects were lost)",
                        )
                    )
                elif result.get("did") is not None and bound != result["did"]:
                    out.append(
                        Violation(
                            "apply-binding-lost",
                            f"acked apply job {job_id} bound to disguise "
                            f"{bound} but its ack reported {result['did']}",
                        )
                    )
            elif kind == "reveal":
                did = int(info.get("payload", {}).get("did", -1))
                record = known.get(did)
                if record is None:
                    out.append(
                        Violation(
                            "reveal-lost",
                            f"acked reveal job {job_id}: disguise {did} has "
                            f"no history record after recovery",
                        )
                    )
                elif record.active:
                    out.append(
                        Violation(
                            "reveal-lost",
                            f"acked reveal job {job_id}: disguise {did} is "
                            f"still active after recovery",
                        )
                    )
        out.extend(self._check_vault_coverage(history, vault, end_of_run=False))
        return out

    # -- end-of-run checks -------------------------------------------------------

    def check_end(self, tables: Tables, history: Any, vault: Any) -> list[Violation]:
        """After reveal-all: the world must equal the baseline exactly."""
        out: list[Violation] = []
        active = [record.did for record in history.records(active_only=True)]
        if active:
            out.append(
                Violation(
                    "reveal-incomplete",
                    f"disguises still active after reveal-all: {active}",
                )
            )
        for name in sorted(set(self.baseline) | set(tables)):
            want = self.baseline.get(name)
            got = tables.get(name)
            if want is None or got is None:
                out.append(
                    Violation(
                        "identity",
                        f"table {name!r} exists only "
                        f"{'after' if want is None else 'before'} the run",
                    )
                )
                continue
            missing = [pk for pk in want if pk not in got]
            extra = [pk for pk in got if pk not in want]
            changed = [
                pk for pk in want if pk in got and got[pk] != want[pk]
            ]
            if missing or extra or changed:
                out.append(
                    Violation(
                        "identity",
                        f"{name}: apply∘reveal is not the identity "
                        f"(missing={missing[:5]} extra={extra[:5]} "
                        f"changed={[(pk, want[pk], got[pk]) for pk in changed[:3]]})",
                    )
                )
        out.extend(self._check_vault_coverage(history, vault, end_of_run=True))
        return out

    # -- shared pieces -----------------------------------------------------------

    def _check_integrity(self, db: Any) -> list[Violation]:
        try:
            db.assert_integrity()
        except ReproError as exc:
            return [Violation("fk-integrity", str(exc))]
        return []

    def _check_vault_coverage(
        self, history: Any, vault: Any, end_of_run: bool
    ) -> list[Violation]:
        """Vault entries exactly cover disguised rows.

        Mid-run: every entry's disguise is active (reveals consume their
        entries; composition migrates entries to the disguise that now
        owns them). End of run: only compensation orphans — entries whose
        disguise id never committed a history row — may remain.
        """
        out: list[Violation] = []
        known = {record.did: record for record in history.records()}
        for owner in vault.owners():
            for entry in vault.entries_for(owner, disguise_id=None):
                record = known.get(entry.disguise_id)
                if record is None:
                    continue  # compensation orphan: tolerated by design
                if not record.active:
                    out.append(
                        Violation(
                            "vault-coverage",
                            f"vault entry {entry.entry_id} (owner {owner!r}, "
                            f"table {entry.table!r}) belongs to revealed "
                            f"disguise {entry.disguise_id}",
                        )
                    )
                elif end_of_run:
                    out.append(
                        Violation(
                            "vault-coverage",
                            f"vault entry {entry.entry_id} for active "
                            f"disguise {entry.disguise_id} survived "
                            f"reveal-all (owner {owner!r})",
                        )
                    )
        return out
