"""Deterministic simulation testing (DST) for the disguise engine.

One seed fully determines a run: the workload (which disguises are
applied/revealed and when), the thread interleaving (a cooperative step
scheduler serializes the worker pool at declared yield points), and the
I/O faults (an in-memory filesystem tears un-fsynced writes and loses
renames on power cut). A dict-based oracle checks disguise round-trip
invariants after every recovery, and a shrinker bisects any failing
schedule down to a minimal trace that replays verbatim.

Layout:

* :mod:`repro.simtest.clock` — the injectable clock protocol
  (``SystemClock`` for production, ``VirtualClock`` under simulation)
  and :class:`PowerCut`, the crash signal;
* :mod:`repro.simtest.sched` — the cooperative step scheduler, the
  simulation plan, and the delta-debugging shrinker;
* :mod:`repro.simtest.simfs` — the crash-consistency filesystem model
  with per-seed fault plans;
* :mod:`repro.simtest.oracle` — invariant checks over recovered state;
* :mod:`repro.simtest.harness` — boots real engine/service/WAL worlds
  on the simulated substrate and drives randomized workloads.
"""

from repro.simtest.clock import Clock, PowerCut, SystemClock, VirtualClock
from repro.simtest.sched import PlannedEvent, SchedulerStuck, SimPlan, StepScheduler, shrink
from repro.simtest.simfs import FaultPlan, SimFs, SimPath

#: Harness/oracle symbols resolved lazily (PEP 562): the storage stack
#: imports ``repro.simtest.clock`` at module load, and eagerly importing
#: the harness here (which imports storage back) would be a cycle.
_LAZY = {
    "Oracle": "repro.simtest.oracle",
    "Violation": "repro.simtest.oracle",
    "SimConfig": "repro.simtest.harness",
    "SimResult": "repro.simtest.harness",
    "build_plan": "repro.simtest.harness",
    "find_wal_windows": "repro.simtest.harness",
    "run_plan": "repro.simtest.harness",
    "run_sim": "repro.simtest.harness",
    "shrink_failure": "repro.simtest.harness",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)

__all__ = [
    "Clock",
    "FaultPlan",
    "Oracle",
    "PlannedEvent",
    "PowerCut",
    "SchedulerStuck",
    "SimConfig",
    "SimFs",
    "SimPath",
    "SimPlan",
    "SimResult",
    "StepScheduler",
    "SystemClock",
    "Violation",
    "VirtualClock",
    "build_plan",
    "find_wal_windows",
    "run_plan",
    "run_sim",
    "shrink",
    "shrink_failure",
]
