"""The injectable clock: one seam for time, sleeps, waits, and threads.

Every blocking primitive the concurrency stack uses — reading the time,
sleeping, waiting on a :class:`threading.Condition`, notifying it, and
spawning worker threads — goes through a clock object threaded into
constructors (``WriteAheadLog(clock=...)``, ``JobQueue(clock=...)``,
``LockManager(clock=...)``, ``WorkerPool(clock=...)``). Production code
passes nothing and gets :data:`SYSTEM_CLOCK`, a zero-overhead delegate
to :mod:`time` and :mod:`threading`. The simulation harness passes a
:class:`VirtualClock` bound to a
:class:`~repro.simtest.sched.StepScheduler`, which turns the same calls
into deterministic cooperative yield points.

No monkeypatching: modules never import-and-call ``time.time`` on a hot
path; they call ``self._clock.time()`` on the instance they were built
with. ``tests/test_determinism_audit.py`` lints the AST to keep it that
way.

This module deliberately imports nothing from the rest of ``repro`` so
that storage/service/vault can depend on it without cycles.
"""

from __future__ import annotations

import threading
import time as _time
from typing import Any, Callable

__all__ = [
    "Clock",
    "PowerCut",
    "SYSTEM_CLOCK",
    "SystemClock",
    "VirtualClock",
    "resolve_clock",
]


class PowerCut(BaseException):
    """The world lost power while this thread was running.

    Raised from clock and simulated-filesystem calls once the harness
    declares a crash, so in-flight worker threads unwind through their
    ``finally`` blocks and die. It subclasses :class:`BaseException`
    (like ``KeyboardInterrupt``) on purpose: the executor's broad
    ``except Exception`` job-failure handling must *not* catch it and
    mark jobs failed in a world that no longer exists.
    """


class SystemClock:
    """Real time, real sleeps, real threads — the production default."""

    def time(self) -> float:
        return _time.time()

    def monotonic(self) -> float:
        return _time.monotonic()

    def sleep(self, seconds: float) -> None:
        _time.sleep(seconds)

    def wait(self, cond: threading.Condition, timeout: float | None = None) -> bool:
        """``cond.wait(timeout)``; the caller must hold ``cond``."""
        return cond.wait(timeout)

    def notify(self, cond: threading.Condition) -> None:
        cond.notify()

    def notify_all(self, cond: threading.Condition) -> None:
        cond.notify_all()

    def tick(self, point: str, detail: str = "") -> None:
        """Declared yield point (lock acquire, WAL append, queue claim,
        ...). A no-op in production; under simulation the scheduler may
        suspend the calling thread here and run another."""

    def spawn(self, target: Callable[[], None], name: str) -> Any:
        """Start a daemon thread; returns an object with ``join``/``is_alive``."""
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        return thread


#: Shared production clock. Stateless, so one instance serves everyone.
SYSTEM_CLOCK = SystemClock()

#: Protocol alias — anything shaped like :class:`SystemClock`.
Clock = SystemClock


def resolve_clock(clock: Any) -> Any:
    """``clock if clock is not None else SYSTEM_CLOCK`` (constructor helper)."""
    return SYSTEM_CLOCK if clock is None else clock


#: Simulated wall-clock origin. Virtual time starts here so journal
#: timestamps look like plausible epochs rather than 1970.
SIM_WALL_BASE = 1_700_000_000.0


class VirtualClock:
    """A clock whose every call is a scheduler event.

    ``time``/``monotonic`` read the scheduler's virtual now; ``sleep``
    and ``wait`` park the calling simulated thread until the scheduler
    resumes it; ``spawn`` registers the thread with the scheduler so it
    only ever runs when stepped. Each simulation epoch (between power
    cuts) gets a fresh ``VirtualClock`` bound to a fresh scheduler;
    threads left over from a crashed epoch keep their old clock, whose
    dead scheduler raises :class:`PowerCut` at their next call.
    """

    def __init__(self, sched: Any) -> None:
        self.sched = sched

    def time(self) -> float:
        return SIM_WALL_BASE + self.sched.now

    def monotonic(self) -> float:
        return self.sched.now

    def sleep(self, seconds: float) -> None:
        self.sched.sleep(seconds)

    def wait(self, cond: threading.Condition, timeout: float | None = None) -> bool:
        return self.sched.wait_on(cond, timeout)

    def notify(self, cond: threading.Condition) -> None:
        # Simulated wakeups are broadcast: all wait loops in the stack
        # re-check their predicate, so waking extra threads is safe and
        # keeps the wake set independent of wait-queue arrival order.
        self.sched.notify_all(cond)

    def notify_all(self, cond: threading.Condition) -> None:
        self.sched.notify_all(cond)

    def tick(self, point: str, detail: str = "") -> None:
        self.sched.tick(point, detail)

    def spawn(self, target: Callable[[], None], name: str) -> Any:
        return self.sched.spawn(target, name)
