"""The simulation harness: real engine worlds on the simulated substrate.

One :class:`SimConfig` seed determines everything about a run:

* the **workload plan** (:func:`build_plan`, drawn from
  ``Random("plan:<seed>")``): which disguises are applied and revealed
  at which scheduler step, and where power cuts land;
* the **interleaving**: each boot epoch gets a fresh
  :class:`~repro.simtest.sched.StepScheduler` seeded from
  ``Random("sched:<seed>:<epoch>")``, so worker threads serialize
  identically on every replay;
* the **fault pattern**: one :class:`~repro.simtest.simfs.FaultPlan`
  drawn from ``Random("fault:<seed>")`` decides torn tails, lost
  renames, and un-fsynced suffixes at every crash.

The three streams are independent on purpose: the shrinker deletes plan
events without shifting a single scheduling or fault decision of the
events that remain.

A run boots the real stack — :class:`~repro.storage.wal.WalDatabase`
(or the sharded group-WAL assembly), :class:`FileVault` with synchronous
appends, and :class:`DisguiseService` worker threads — entirely on a
:class:`SimFs`, steps the scheduler while firing plan events, crashes
and recovers per the plan (checking the oracle after every recovery),
then drains, verifies that recovering from disk reproduces the live
state, reveals every active disguise, and checks apply∘reveal identity
against the pre-run baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any

from repro.core.engine import Disguiser
from repro.errors import ReproError
from repro.service.queue import DONE
from repro.service.server import DisguiseService
from repro.simtest.clock import VirtualClock
from repro.simtest.oracle import Oracle, Violation, snapshot_tables
from repro.simtest.sched import (
    PlannedEvent,
    SchedulerStuck,
    SimPlan,
    StepScheduler,
    shrink,
)
from repro.simtest.simfs import FaultPlan, SimFs
from repro.storage.persist import (
    load_database,
    read_snapshot_generation,
    save_database_atomic,
)
from repro.storage.wal import WalDatabase, WriteAheadLog, recover_database
from repro.vault.file_vault import FileVault

__all__ = [
    "SimConfig",
    "SimResult",
    "build_plan",
    "find_wal_windows",
    "run_plan",
    "run_sim",
    "shrink_failure",
]

SNAP = "/sim/db.json"
QUEUE = "/sim/db.json.jobs"
VAULT_DIR = "/sim/vault"

#: Virtual seconds a power cycle takes — recovery starts on a later
#: clock than the crash, like a real reboot.
REBOOT_COST_S = 1.0


@dataclass(frozen=True)
class SimConfig:
    """Everything that parameterizes one simulated run."""

    seed: int
    steps: int = 300
    shards: int = 0          # 0 = monolithic WalDatabase; N>1 = sharded
    workers: int = 2
    app: str = "lobsters"    # "lobsters" | "hotcrp"
    wal_fsync: str = "batch"
    crashes: int | None = None   # None = let the plan RNG decide
    wal_cls: Any = None          # WriteAheadLog substitute (bug re-introduction)
    eio_rate: float = 0.0
    #: Probability a crash keeps ALL un-fsynced appended bytes. The 0.5
    #: default explores both outcomes; 0.0 forces a torn write whenever
    #: a crash catches un-fsynced data (bug-hunt configs).
    fault_keep_all: float = 0.5
    poll_interval: float = 0.05
    lock_timeout: float = 5.0


@dataclass
class SimResult:
    """Outcome of one run: violations, the full schedule trace, stats."""

    config: SimConfig
    plan: SimPlan
    violations: list[Violation] = field(default_factory=list)
    trace: list[str] = field(default_factory=list)
    stats: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def report(self) -> str:
        lines = [
            f"seed={self.config.seed} steps={self.plan.steps} "
            f"events={len(self.plan.events)} app={self.config.app} "
            f"shards={self.config.shards}: "
            + ("OK" if self.ok else f"{len(self.violations)} violation(s)")
        ]
        lines.extend(f"  {violation}" for violation in self.violations)
        return "\n".join(lines)


def build_plan(config: SimConfig) -> SimPlan:
    """Draw the workload script for *config* from its plan stream."""
    rng = random.Random(f"plan:{config.seed}")
    horizon = max(2, config.steps)
    events: list[PlannedEvent] = []
    for _ in range(max(3, config.steps // 12)):
        at = rng.randrange(1, horizon)
        pick = rng.randrange(1 << 16)
        if rng.random() < 0.35:
            events.append(PlannedEvent(at, "reveal", (("pick", pick),)))
        else:
            events.append(
                PlannedEvent(
                    at, "apply", (("pick", pick), ("spec", rng.randrange(1 << 16)))
                )
            )
    n_crashes = (
        config.crashes
        if config.crashes is not None
        else rng.randint(0, 1 + config.steps // 150)
    )
    for _ in range(n_crashes):
        events.append(
            PlannedEvent(
                rng.randrange(min(5, horizon - 1), horizon),
                "crash",
                (("checkpoint", rng.random() < 0.25),),
            )
        )
    events.sort(key=lambda event: event.at)
    return SimPlan(steps=config.steps, events=tuple(events))


def run_sim(config: SimConfig) -> SimResult:
    """Generate the plan for *config* and run it."""
    return run_plan(config, build_plan(config))


def run_plan(config: SimConfig, plan: SimPlan) -> SimResult:
    """Run one plan to completion; never raises for invariant failures."""
    return _Sim(config).run(plan)


def find_wal_windows(config: SimConfig, plan: SimPlan | None = None) -> list[int]:
    """Steps at which the monolith WAL holds un-fsynced appended bytes
    over a durable prefix — the crash instants where a power cut tears
    the log's tail rather than erasing a never-synced file wholesale.

    Deterministic like everything else: injecting a crash at a reported
    step replays the exact same pre-crash world, so bug-reintroduction
    tests use this to aim a power cut into the torn-tail window instead
    of hoping a random sweep lands one.
    """
    plan = build_plan(config) if plan is None else plan
    sim = _Sim(config)
    sim._first_boot()
    pending = list(plan.events)
    step, hits = 0, []
    wal_name = str(sim.fs.path(SNAP)) + ".wal"
    while step < plan.steps:
        while pending and pending[0].at <= step:
            sim._fire(pending.pop(0))
        sim.sched.step()
        step += 1
        sim._observe_acks()
        inode = sim.fs._names.get(wal_name)
        if (
            inode is not None
            and len(inode.durable) > 0
            and bytes(inode.data) != inode.durable
        ):
            hits.append(step)
    sim._finish()
    return hits


def shrink_failure(
    config: SimConfig, plan: SimPlan | None = None, max_probes: int = 200
) -> tuple[SimPlan, SimResult] | None:
    """Shrink a failing run to a minimal plan; ``None`` if it passes.

    Returns the shrunken plan plus its (still failing) result, whose
    trace is the minimal reproduction.
    """
    plan = build_plan(config) if plan is None else plan
    if run_plan(config, plan).ok:
        return None

    def still_fails(candidate: SimPlan) -> bool:
        return not run_plan(config, candidate).ok

    small = shrink(plan, still_fails, max_probes=max_probes)
    return small, run_plan(config, small)


# -- application worlds ----------------------------------------------------------


def _build_app(config: SimConfig):
    """(fresh db, disguise specs, owner table) for the configured app.

    Populations are tiny: the harness explores interleavings and crash
    points, not data volume, and small worlds keep a 300-step run fast
    enough to sweep hundreds of seeds.
    """
    if config.app == "lobsters":
        from repro.apps.lobsters.disguises import all_disguises
        from repro.apps.lobsters.generate import LobstersPopulation, generate_lobsters

        db = generate_lobsters(
            seed=config.seed,
            population=LobstersPopulation(users=10, stories=18, comments=36),
        )
        return db, all_disguises(), "users"
    if config.app == "hotcrp":
        from repro.apps.hotcrp.disguises import hotcrp_gdpr, hotcrp_gdpr_plus
        from repro.apps.hotcrp.generate import HotcrpPopulation, generate_hotcrp

        db = generate_hotcrp(
            seed=config.seed,
            population=HotcrpPopulation(users=12, pc_members=4, papers=8, reviews=24),
        )
        # confanon is a global (uid-less) disguise; the per-owner
        # apply/reveal workload sticks to the owner-rooted specs.
        return db, [hotcrp_gdpr(), hotcrp_gdpr_plus()], "ContactInfo"
    raise ReproError(f"unknown simulation app {config.app!r}")


class _Sim:
    """One simulated run: the driver loop plus per-epoch world state."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.fs = SimFs(
            FaultPlan(
                random.Random(f"fault:{config.seed}"),
                p_keep_all=config.fault_keep_all,
                eio_rate=config.eio_rate,
            )
        )
        self.epoch = 0
        self.now = 0.0
        self.trace: list[str] = []
        self.violations: list[Violation] = []
        self.acked: dict[int, dict[str, Any]] = {}
        self.did_to_uid: dict[int, Any] = {}
        self.revealed: set[int] = set()
        self.reveal_requested: set[int] = set()
        self.busy: set[Any] = set()
        self.submitted = 0
        # Filled by _boot:
        self.sched: StepScheduler | None = None
        self.clock: VirtualClock | None = None
        self.service: DisguiseService | None = None
        self.engine: Disguiser | None = None
        self.oracle: Oracle | None = None
        self.uids: list[Any] = []
        self.specs: list[Any] = []
        self.wal_db: WalDatabase | None = None
        self.sdb: Any = None
        self.group: Any = None
        self.generation = 0

    # -- lifecycle ---------------------------------------------------------------

    def run(self, plan: SimPlan) -> SimResult:
        result = SimResult(self.config, plan, self.violations, self.trace)
        try:
            self._first_boot()
            pending = list(plan.events)
            step = 0
            while step < plan.steps:
                while pending and pending[0].at <= step:
                    self._fire(pending.pop(0))
                self.sched.step()
                step += 1
                self._observe_acks()
            self._finish()
        except SchedulerStuck as exc:
            self.violations.append(Violation("deadlock", str(exc)))
        finally:
            if self.sched is not None:
                self._collect_trace()
        result.stats = {
            "epochs": self.epoch + 1,
            "jobs_submitted": self.submitted,
            "jobs_acked": len(self.acked),
            "virtual_seconds": round(self.now, 3),
        }
        return result

    def _first_boot(self) -> None:
        db0, self.specs, user_table = _build_app(self.config)
        self.user_table = user_table
        pk = db0.table(user_table).schema.primary_key
        self.uids = sorted(row[pk] for row in db0.table(user_table).rows())
        self.fs.path("/sim").mkdir(parents=True, exist_ok=True)
        save_database_atomic(db0, self.fs.path(SNAP), generation=0)
        self.oracle = Oracle.of(db0)
        self._boot()
        self._start()

    def _boot(self) -> None:
        """Assemble a world over whatever the (sim) disk currently holds."""
        self.sched = StepScheduler(
            random.Random(f"sched:{self.config.seed}:{self.epoch}"), now=self.now
        )
        self.clock = VirtualClock(self.sched)
        if self.config.shards > 1:
            self._boot_sharded()
        else:
            self._boot_monolith()
        for spec in self.specs:
            self.engine.register(spec)
        self.service = self._service_cls()(
            self.engine,
            self.fs.path(QUEUE),
            workers=self.config.workers,
            wal=self._redo_hook(),
            lock_timeout=self.config.lock_timeout,
            max_attempts=3,
            backoff_base=0.01,
            queue_fsync=True,
            poll_interval=self.config.poll_interval,
            clock=self.clock,
        )

    def _boot_monolith(self) -> None:
        self.wal_db = WalDatabase(
            self.fs.path(SNAP),
            fsync=self.config.wal_fsync,
            clock=self.clock,
            wal_cls=self.config.wal_cls,
        )
        vault = FileVault(self.fs.path(VAULT_DIR), sync_appends=True)
        self.engine = Disguiser(self.wal_db.db, vault=vault, seed=self.config.seed)

    def _boot_sharded(self) -> None:
        from repro.shard import ShardedVault, recover_migration, shard_database

        base = load_database(self.fs.path(SNAP))
        self.generation = read_snapshot_generation(self.fs.path(SNAP))
        # map_path=None: with no rebalance overrides the sha256 placement
        # re-partitions the snapshot identically on every boot, so shard
        # WALs replay onto exactly the layout the crashed run journaled.
        sdb = shard_database(
            base, self.config.shards, map_path=None, user_table=self.user_table
        )
        from repro.shard import replay_shard_logs

        wal_paths = [
            self.fs.path(self._shard_wal(index))
            for index in range(self.config.shards)
        ]
        replayed, next_txn = replay_shard_logs(
            sdb.shards, wal_paths, self.generation
        )
        if replayed == 0:
            sdb.shard_map.dirty.clear()
        wal_cls = self.config.wal_cls or WriteAheadLog
        wals = [
            wal_cls(
                self.fs.path(self._shard_wal(index)),
                fsync=self.config.wal_fsync,
                generation=self.generation,
                clock=self.clock,
            )
            for index in range(self.config.shards)
        ]
        from repro.shard import ShardGroupWal

        self.group = ShardGroupWal(wals, clock=self.clock, next_txn=next_txn)
        sdb.set_redo_hook(self.group)
        vault = ShardedVault(
            [
                FileVault(self.fs.path(f"{VAULT_DIR}/shard-{index}"), sync_appends=True)
                for index in range(self.config.shards)
            ],
            sdb.shard_map,
        )
        recover_migration(sdb, vault)
        self.sdb = sdb
        self.engine = Disguiser(sdb, vault=vault, seed=self.config.seed)

    def _service_cls(self):
        if self.config.shards > 1:
            from repro.shard import ShardedDisguiseService

            return ShardedDisguiseService
        return DisguiseService

    def _redo_hook(self) -> Any:
        return self.group if self.config.shards > 1 else self.wal_db.wal

    def _shard_wal(self, index: int) -> str:
        return f"{SNAP}.s{index}.wal"

    def _db(self) -> Any:
        return self.sdb if self.config.shards > 1 else self.wal_db.db

    def _live_tables(self) -> dict[str, dict[Any, dict[str, Any]]]:
        if self.config.shards > 1:
            from repro.shard import collapse

            return snapshot_tables(collapse(self.sdb))
        return snapshot_tables(self.wal_db.db)

    def _start(self) -> None:
        self.service.start()
        self.trace.append(f"!boot epoch={self.epoch} t={self.now:.3f}")

    def _collect_trace(self) -> None:
        self.trace.extend(self.sched.trace)
        self.sched.trace = []

    # -- driver events -----------------------------------------------------------

    def _fire(self, event: PlannedEvent) -> None:
        if event.kind == "apply":
            candidates = [uid for uid in self.uids if uid not in self.busy]
            if not candidates:
                return
            uid = candidates[event.arg("pick", 0) % len(candidates)]
            spec = self.specs[event.arg("spec", 0) % len(self.specs)]
            self.service.submit_apply(spec.name, uid)
            self.busy.add(uid)
            self.submitted += 1
            self.trace.append(f"!submit apply {spec.name} uid={uid}")
        elif event.kind == "reveal":
            candidates = [
                did
                for did in sorted(self.did_to_uid)
                if did not in self.reveal_requested and did not in self.revealed
            ]
            if not candidates:
                return
            did = candidates[event.arg("pick", 0) % len(candidates)]
            self.service.submit_reveal(did)
            self.reveal_requested.add(did)
            self.submitted += 1
            self.trace.append(f"!submit reveal did={did}")
        elif event.kind == "crash":
            self._crash(checkpoint=bool(event.arg("checkpoint", False)))
        else:
            raise ReproError(f"unknown plan event kind {event.kind!r}")

    def _observe_acks(self) -> None:
        """Record every job the driver can see DONE — the set the oracle
        holds the recovered world accountable for."""
        for job in self.service.queue.jobs(states=(DONE,)):
            if job.job_id in self.acked:
                continue
            result = dict(job.result or {})
            self.acked[job.job_id] = {
                "kind": job.kind,
                "payload": dict(job.payload),
                "result": result,
            }
            if job.kind == "apply" and result.get("did") is not None:
                self.did_to_uid[result["did"]] = job.payload.get("uid")
            elif job.kind == "reveal":
                did = int(job.payload["did"])
                self.revealed.add(did)
                self.busy.discard(self.did_to_uid.get(did))

    # -- crash / recover ---------------------------------------------------------

    def _crash(self, checkpoint: bool) -> None:
        self._observe_acks()
        old = self.sched
        # The disk dies at the crash instant, BEFORE the threads unwind:
        # compensation code running in except/finally blocks (e.g. the
        # vault journal's compensate()) must not get to write durably —
        # a real power cut runs no code at all.
        self.fs.dead = True
        old.crash()
        self._collect_trace()
        self._drop_scatter_pool()
        self.fs = self.fs.crash()
        self.now = old.now + REBOOT_COST_S
        self.epoch += 1
        self.trace.append(f"!powercut -> epoch={self.epoch}")
        self._boot()
        self.violations.extend(
            self.oracle.check_recovery(
                self._db(),
                self.engine.history,
                self.engine.vault,
                self.service.queue,
                self.acked,
            )
        )
        if checkpoint:
            self._checkpoint()
        self._start()

    def _drop_scatter_pool(self) -> None:
        """Retire the sharded engine's real scatter pool (it is only used
        for hook-less driver reads; its threads are not simulated)."""
        if self.sdb is not None:
            pool = getattr(self.sdb, "_scatter_pool", None)
            if pool is not None:
                pool.shutdown(wait=False)
                self.sdb._scatter_pool = None

    def _checkpoint(self) -> None:
        if self.config.shards > 1:
            from repro.shard import collapse

            # Same crash discipline as WalDatabase.checkpoint: install the
            # merged snapshot with a bumped generation first, then restamp
            # the (live) shard logs — a crash in between leaves stale-gen
            # logs that recovery recognizes as already folded in.
            self.group.sync()
            self.generation += 1
            save_database_atomic(
                collapse(self.sdb), self.fs.path(SNAP), generation=self.generation
            )
            for wal in self.group.wals:
                wal.truncate(generation=self.generation)
            # A collapsed checkpoint canonicalizes placement: the next
            # recovery re-partitions the merged snapshot by owner hash,
            # which moves rows that lived off their home (biased
            # placeholder inserts replayed onto their journaling shard).
            # Rebuild the live world from the snapshot now, so the
            # layout the engine journals against is exactly the one a
            # recovery would reconstruct — the same discipline as the
            # CLI, which only checkpoints at shutdown and re-partitions
            # on reopen.
            self._collect_trace()
            self.now = self.sched.now
            self._drop_scatter_pool()
            self._boot()
        else:
            self.wal_db.checkpoint()
        self.trace.append("!checkpoint")

    # -- end of run --------------------------------------------------------------

    def _finish(self) -> None:
        self._observe_acks()
        drained = self.service.drain(timeout=600.0)
        self._observe_acks()
        if not drained:
            self.violations.append(
                Violation("drain", "queue failed to drain within 600 virtual seconds")
            )
        self.service.shutdown(timeout=60.0)
        self.violations.extend(self._check_durability())
        self._reveal_all()
        tables = self._live_tables()
        self.violations.extend(
            self.oracle.check_end(tables, self.engine.history, self.engine.vault)
        )
        if self.config.shards > 1:
            self._drop_scatter_pool()
        else:
            self.wal_db.close()

    def _reveal_all(self) -> None:
        """Undo every still-active disguise, newest first (composition:
        later disguises may hold entries migrated from earlier ones)."""
        active = sorted(
            (record.did for record in self.engine.history.records(active_only=True)),
            reverse=True,
        )
        for did in active:
            try:
                self.engine.reveal(did)
            except ReproError as exc:
                self.violations.append(
                    Violation("reveal-incomplete", f"reveal({did}) raised: {exc}")
                )

    def _check_durability(self) -> list[Violation]:
        """Re-recover from (sim) disk and diff against the live world.

        Catches durability bugs that only a *later* recovery would see —
        e.g. a WAL that reopens without trimming crash debris, stranding
        every commit appended after it.
        """
        live = self._live_tables()
        try:
            recovered = self._recovered_tables()
        except ReproError as exc:
            return [Violation("durability", f"re-recovery failed: {exc}")]
        out: list[Violation] = []
        for name in sorted(set(live) | set(recovered)):
            want, got = live.get(name), recovered.get(name)
            if want == got:
                continue
            want = want or {}
            got = got or {}
            missing = [pk for pk in want if pk not in got]
            extra = [pk for pk in got if pk not in want]
            changed = [pk for pk in want if pk in got and got[pk] != want[pk]]
            out.append(
                Violation(
                    "durability",
                    f"{name}: recovering from disk loses acked state "
                    f"(missing={missing[:5]} extra={extra[:5]} "
                    f"changed={changed[:5]})",
                )
            )
        return out

    def _recovered_tables(self) -> dict[str, dict[Any, dict[str, Any]]]:
        if self.config.shards <= 1:
            recovered = recover_database(
                self.fs.path(SNAP), self.wal_db.wal_path, verify=False
            )
            return snapshot_tables(recovered)
        from repro.shard import replay_shard_logs, shard_database

        base = load_database(self.fs.path(SNAP), verify=False)
        generation = read_snapshot_generation(self.fs.path(SNAP))
        fresh = shard_database(
            base, self.config.shards, map_path=None, user_table=self.user_table
        )
        wal_paths = [
            self.fs.path(self._shard_wal(index))
            for index in range(self.config.shards)
        ]
        # scrub=False: this is a read-only what-if recovery against the
        # *live* logs — it must never rewrite them under the service.
        replay_shard_logs(fresh.shards, wal_paths, generation, scrub=False)
        # Union across shards, flagging duplicate placements inline: the
        # shard union must equal the monolith row set exactly.
        out: dict[str, dict[Any, dict[str, Any]]] = {}
        for shard in fresh.shards:
            for name, rows in snapshot_tables(shard).items():
                bucket = out.setdefault(name, {})
                for pk, row in rows.items():
                    if pk in bucket and bucket[pk] != row:
                        self.violations.append(
                            Violation(
                                "shard-union",
                                f"{name}[{pk!r}] exists on two shards with "
                                f"different contents",
                            )
                        )
                    bucket[pk] = row
        pool = getattr(fresh, "_scatter_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)
        return out
