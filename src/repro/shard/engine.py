"""`ShardedDatabase`: the Database statement API over N owner-hash shards.

Each shard is a full :class:`~repro.storage.database.Database` (its own
tables, plan cache, stats, obs registry, undo log — and, when attached,
its own write-ahead log), holding the rows of the owners hashed to it
plus a replica of every global table. The facade keeps the developer API
of the monolithic engine (the PET-deployability SoK's requirement that
scaling stay invisible behind the existing interface):

* single-shard statements — predicate pins the anchor to clean owners —
  delegate straight to the home shard;
* cross-shard SELECT/COUNT scatter-gathers (a thread pool when no lock
  hook is attached; serial under one, since 2PL lock scopes are bound to
  the calling thread) and merges rows;
* writes route rows by owner hash; global tables fan out to every shard
  so shard-local FK checks against them always resolve locally.

Foreign-key semantics live **in the facade**: per-shard databases are
always driven with ``enforce_fk=False`` and the facade performs every
check globally via O(1) cross-shard primary-key probes, mirroring the
monolith's check order, cascade traversal, and error messages — the
differential equivalence suite holds a 1-shard facade to byte-identical
row outcomes against a plain ``Database``. Cross-shard integrity probes
are latch-free: under the service, owner-rooted footprints make them
race-free, and the rare cross-owner fringe (a probe observing a row a
concurrent job is deleting) surfaces as a retryable job error, never
silent corruption.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import (
    ConstraintError,
    ForeignKeyError,
    NoSuchRowError,
    ShardError,
    TransactionError,
)
from repro.obs.registry import MetricsView, Registry
from repro.storage.database import Database, QueryStats
from repro.storage.predicate import Predicate, SetClause
from repro.storage.schema import FKAction, Schema, TableSchema
from repro.storage.sql import parse_set, parse_where
from repro.storage.table import Table
from repro.storage.types import coerce
from repro.shard.router import (
    DIRECT,
    GLOBAL,
    INDIRECT,
    ROOT,
    SYSTEM,
    Router,
    ShardMap,
)

__all__ = [
    "ShardedDatabase",
    "ShardedTableView",
    "collapse",
    "shard_database",
    "shard_lock_name",
]


def shard_lock_name(index: int, table: str) -> str:
    """Per-shard lock name; system tables keep their leading underscore
    (the lock hook latches ``_``-prefixed names instead of 2PL-locking)."""
    if table.startswith("_"):
        return f"_s{index}{table}"
    return f"s{index}/{table}"


class _ShardLockHook:
    """Adapter giving one shard's statements shard-qualified lock names.

    Transaction callbacks are suppressed: the facade drives the real
    hook's ``on_begin``/``on_txn_end`` at *facade* transaction bounds, so
    locks release only after every shard's WAL unit is appended (the
    strict-2PL + early-lock-release contract of the monolithic path).
    """

    def __init__(self, inner: Any, index: int) -> None:
        self.inner = inner
        self.index = index

    def on_statement_start(self, table: str, mode: str) -> None:
        self.inner.on_statement_start(shard_lock_name(self.index, table), mode)

    def on_access(self, table: str, mode: str) -> None:
        self.inner.on_access(shard_lock_name(self.index, table), mode)

    def on_statement_end(self) -> None:
        self.inner.on_statement_end()

    def on_begin(self) -> None:  # facade-driven; see class docstring
        pass

    def on_txn_end(self) -> None:
        pass


class ShardedTableView:
    """Aggregate read view over one logical table's per-shard slices.

    Exposes the :class:`~repro.storage.table.Table` surface the engine
    layers read through (``rows``/``view``/``rid_of``/``referencing_rows``
    /``max_pk``); index DDL fans out to every shard holding the table.
    """

    def __init__(self, sdb: "ShardedDatabase", name: str) -> None:
        self._sdb = sdb
        self.name = name

    @property
    def schema(self) -> TableSchema:
        return self._sdb.schema.table(self.name)

    def _read_tables(self) -> list[Table]:
        sdb = self._sdb
        return [sdb.shards[i].table(self.name) for i in sdb._read_indices(self.name)]

    def _write_tables(self) -> list[Table]:
        sdb = self._sdb
        return [sdb.shards[i].table(self.name) for i in sdb._write_indices(self.name)]

    def __len__(self) -> int:
        return sum(len(t) for t in self._read_tables())

    def rows(self) -> list[Any]:
        out: list[Any] = []
        for t in self._read_tables():
            out.extend(t.rows())
        return out

    def scan(self, pred: Any = None, params: Any = None) -> list[Any]:
        out: list[Any] = []
        for t in self._read_tables():
            out.extend(t.scan(pred, params))
        return out

    def count(self, pred: Any = None, params: Any = None) -> int:
        return sum(t.count(pred, params) for t in self._read_tables())

    def get(self, pk_value: Any) -> dict[str, Any] | None:
        for t in self._read_tables():
            row = t.get(pk_value)
            if row is not None:
                return row
        return None

    def view(self, pk_value: Any) -> Any:
        for t in self._read_tables():
            row = t.view(pk_value)
            if row is not None:
                return row
        return None

    def rid_of(self, pk_value: Any) -> Any:
        for t in self._read_tables():
            rid = t.rid_of(pk_value)
            if rid is not None:
                return rid
        return None

    def referencing_rows(
        self, fk_column: str, value: Any, sort: bool = True
    ) -> list[Any]:
        out: list[Any] = []
        for t in self._read_tables():
            out.extend(t.referencing_rows(fk_column, value, sort=sort))
        return out

    def max_pk(self) -> Any:
        tops = [t.max_pk() for t in self._read_tables()]
        tops = [t for t in tops if t is not None]
        return max(tops) if tops else None

    @property
    def rows_examined(self) -> int:
        return sum(t.rows_examined for t in self._read_tables())

    def has_indexed(self, column: str) -> bool:
        tables = self._read_tables()
        return bool(tables) and tables[0].has_indexed(column)

    def create_index(self, column: str) -> None:
        for t in self._write_tables():
            t.create_index(column)

    def drop_index(self, column: str) -> None:
        for t in self._write_tables():
            t.drop_index(column)


class ShardedDatabase:
    """Facade presenting N per-shard Databases as one (see module doc)."""

    def __init__(
        self,
        shards: list[Database],
        router: Router,
    ) -> None:
        if not shards:
            raise ShardError("a sharded database needs at least one shard")
        if router.n_shards != len(shards):
            raise ShardError(
                f"router is for {router.n_shards} shard(s), got {len(shards)}"
            )
        self.shards = list(shards)
        self.router = router
        self.stats = QueryStats()
        self.obs = Registry()
        self._stats_mu = threading.Lock()
        self._id_lock = threading.Lock()
        self._id_watermark: dict[str, int] = {}
        self._tls = threading.local()
        self._lock_hook: Any = None
        self._group_wal: Any = None
        self._views: dict[str, ShardedTableView] = {}
        self._scatter_pool: ThreadPoolExecutor | None = None
        # Routing telemetry (shard.* gauges read these).
        self.routed_reads = 0
        self.scatter_reads = 0
        self.fanout_writes = 0
        self._register_obs()

    # -- topology ----------------------------------------------------------------

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def shard_map(self) -> ShardMap:
        return self.router.map

    @property
    def schema(self) -> Schema:
        # Shard 0 is the home of system tables, so its schema is the
        # complete logical schema; shards 1..N-1 lack only system tables.
        return self.shards[0].schema

    def _read_indices(self, table: str) -> list[int]:
        kind = self.router.placement(table).kind
        if kind in (SYSTEM, GLOBAL):
            return [0]
        return list(range(self.n_shards))

    def _write_indices(self, table: str) -> list[int]:
        kind = self.router.placement(table).kind
        if kind == SYSTEM:
            return [0]
        return list(range(self.n_shards))

    def table(self, name: str) -> ShardedTableView:
        view = self._views.get(name)
        if view is None:
            self.shards[0].table(name)  # raises UnknownTableError if missing
            view = self._views[name] = ShardedTableView(self, name)
        return view

    def has_table(self, name: str) -> bool:
        return self.schema.has_table(name)

    def table_names(self) -> tuple[str, ...]:
        return self.shards[0].table_names()

    def create_table(self, table_schema: TableSchema) -> None:
        if table_schema.name.startswith("_"):
            self.shards[0].create_table(table_schema)
        else:
            for shard in self.shards:
                shard.create_table(table_schema)
        self.router.invalidate()

    def drop_table(self, name: str) -> None:
        for i in self._write_indices(name):
            self.shards[i].drop_table(name)
        self._views.pop(name, None)
        self.router.invalidate()

    # -- routing bias (parallel disguise execution) -------------------------------

    @contextmanager
    def routing_bias(self, shard_index: int | None):
        """Pin new root-table rows to *shard_index* for this thread.

        The shard service sets the bias to a job's home shard so rows a
        disguise creates (per-row placeholder users) land on the shard
        the job already holds locks on — independent owners never meet on
        a lock. Off-home placements mark the new owner dirty so reads on
        it scatter; placement never decides correctness, only locality.
        """
        previous = getattr(self._tls, "bias", None)
        self._tls.bias = shard_index
        try:
            yield
        finally:
            self._tls.bias = previous

    def current_bias(self) -> int | None:
        return getattr(self._tls, "bias", None)

    # -- hooks -------------------------------------------------------------------

    def set_lock_hook(self, hook: Any) -> None:
        if self.in_transaction:
            raise TransactionError("cannot change lock hook inside a transaction")
        self._lock_hook = hook
        for index, shard in enumerate(self.shards):
            shard.set_lock_hook(None if hook is None else _ShardLockHook(hook, index))

    def set_redo_hook(self, hook: Any) -> None:
        """Attach one WAL per shard (a ``ShardGroupWal``), or detach all."""
        if hook is None:
            for shard in self.shards:
                shard.set_redo_hook(None)
            self._group_wal = None
            return
        wals = getattr(hook, "wals", None)
        if wals is None or len(wals) != self.n_shards:
            raise ShardError(
                "a sharded database needs one WAL per shard "
                "(attach a repro.shard.apply.ShardGroupWal)"
            )
        for shard, wal in zip(self.shards, wals):
            shard.set_redo_hook(wal)
        self._group_wal = hook
        if hasattr(hook, "register_metrics"):
            hook.register_metrics(self.obs)

    # -- transactions ------------------------------------------------------------

    def _depth(self) -> int:
        return getattr(self._tls, "depth", 0)

    @property
    def in_transaction(self) -> bool:
        return self._depth() > 0

    def begin(self) -> None:
        for shard in self.shards:
            shard.begin()
        if self._depth() == 0 and self._lock_hook is not None:
            self._lock_hook.on_begin()
        self._tls.depth = self._depth() + 1

    def commit(self) -> None:
        if self._depth() == 0:
            raise TransactionError("commit without begin")
        self._tls.depth = self._depth() - 1
        multi_shard = False
        if self._tls.depth == 0 and self._group_wal is not None:
            # Stamp multi-shard transactions with a group-commit marker
            # before any shard's unit is appended — replay then treats
            # the per-shard units as all-or-nothing (see
            # repro.shard.apply.replay_shard_logs).
            multi_shard = self._group_wal.tag_commit()
        for shard in self.shards:
            shard.commit()
        if multi_shard:
            # Durable on every participant before the locks release:
            # once another transaction can read these writes, no crash
            # can tear them back out, so recovery may drop a torn
            # multi-shard transaction without cascading. Single-shard
            # transactions keep lazy group commit — same-log append
            # order already protects their dependents.
            self._group_wal.commit_barrier()
        self._persist_map_if_dirty()
        if self._tls.depth == 0 and self._lock_hook is not None:
            # Locks release only after every shard appended its unit:
            # the WAL-before-lock-release order of the monolithic path.
            self._lock_hook.on_txn_end()

    def rollback(self) -> None:
        if self._depth() == 0:
            raise TransactionError("rollback without begin")
        self._tls.depth = self._depth() - 1
        for shard in reversed(self.shards):
            shard.rollback()
        if self._tls.depth == 0 and self._lock_hook is not None:
            self._lock_hook.on_txn_end()

    def redo_barrier(self) -> None:
        """Block until this thread's commits are durable on every shard log."""
        if self._group_wal is not None:
            self._group_wal.commit_barrier()
        else:
            for shard in self.shards:
                shard.redo_barrier()

    def transaction(self) -> "_ShardedTransaction":
        return _ShardedTransaction(self)

    # -- stats plumbing ----------------------------------------------------------

    def _bump(self, **deltas: int) -> None:
        with self._stats_mu:
            for name, amount in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + amount)

    def _note_route(self, kind: str) -> None:
        with self._stats_mu:
            if kind == "single":
                self.routed_reads += 1
            elif kind == "scatter":
                self.scatter_reads += 1

    def _persist_map_if_dirty(self) -> None:
        shard_map = self.router.map
        if getattr(shard_map, "_unsaved", False) and self._depth() == 0:
            shard_map.save()
            shard_map._unsaved = False

    def _mark_dirty(self, owner: Any) -> None:
        self.router.map.mark_dirty(owner)
        self.router.map._unsaved = True
        if self._depth() == 0:
            self._persist_map_if_dirty()

    # -- probes (cross-shard FK machinery) ---------------------------------------

    def _locate(self, table: str, pk_value: Any) -> int | None:
        """Which shard holds the row with this pk, or None.

        Probes the hash home first for root tables; placement of every
        other class is discovered by probing (correctness never depends
        on a row being at its computed home).
        """
        indices = self._read_indices(table)
        if len(indices) > 1:
            placement = self.router.placement(table)
            if placement.kind == ROOT:
                home = self.router.map.shard_of(pk_value)
                indices = [home] + [i for i in indices if i != home]
        for i in indices:
            if self.shards[i].table(table).rid_of(pk_value) is not None:
                return i
        return None

    def _exists(self, table: str, value: Any) -> bool:
        return self._locate(table, value) is not None

    def _check_fks_outgoing(self, ts: TableSchema, row: Mapping[str, Any]) -> None:
        for fk in ts.foreign_keys:
            value = row[fk.column]
            if value is None:
                continue
            if not self._exists(fk.parent_table, value):
                raise ForeignKeyError(
                    f"{ts.name}.{fk.column}={value!r} references "
                    f"missing {fk.parent_table}.{fk.parent_column}"
                )

    # -- reads -------------------------------------------------------------------

    def _route_read(self, table: str, where: Any, params: Any):
        pred = parse_where(where) if where is not None else None
        kind, indices = self.router.read_shards(
            table, pred, params, locate=self._locate
        )
        self._note_route(kind)
        return indices

    def _scatter(self, indices: list[int], fn) -> list[Any]:
        if len(indices) == 1 or self._lock_hook is not None:
            # Lock scopes are thread-bound: under a hook, scatter stays
            # on the calling thread so acquisitions join its 2PL scope.
            out: list[Any] = []
            for i in indices:
                out.extend(fn(self.shards[i]))
            return out
        pool = self._pool()
        futures = [pool.submit(fn, self.shards[i]) for i in indices]
        out = []
        for future in futures:
            out.extend(future.result())
        return out

    def _pool(self) -> ThreadPoolExecutor:
        if self._scatter_pool is None:
            self._scatter_pool = ThreadPoolExecutor(
                max_workers=self.n_shards, thread_name_prefix="shard-scatter"
            )
        return self._scatter_pool

    def select(
        self,
        table: str,
        where: str | Predicate | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> list[dict[str, Any]]:
        self._bump(selects=1, statements=1)
        indices = self._route_read(table, where, params)
        return self._scatter(indices, lambda s: s.select(table, where, params))

    def get(self, table: str, pk_value: Any) -> dict[str, Any] | None:
        self._bump(selects=1, statements=1)
        located = self._locate(table, pk_value)
        if located is None:
            return None
        return self.shards[located].get(table, pk_value)

    def count(
        self,
        table: str,
        where: str | Predicate | None = None,
        params: Mapping[str, Any] | None = None,
    ) -> int:
        self._bump(selects=1, statements=1)
        indices = self._route_read(table, where, params)
        return sum(self.shards[i].count(table, where, params) for i in indices)

    def explain(
        self,
        table: str,
        where: str | Predicate | None = None,
        params: Mapping[str, Any] | None = None,
        analyze: bool = False,
    ) -> Any:
        """EXPLAIN against the routed shard(s).

        A single-shard route returns that shard's report. A scatter runs
        EXPLAIN on every shard (so ANALYZE advances diagnostics exactly
        like the scatter it models) and returns the report of the shard
        holding the most rows — per-shard plans are identical in shape.
        """
        indices = self._route_read(table, where, params)
        reports = [(i, self.shards[i].explain(table, where, params, analyze)) for i in indices]
        if len(reports) == 1:
            return reports[0][1]
        largest = max(reports, key=lambda pair: len(self.shards[pair[0]].table(table)))
        return largest[1]

    # -- writes ------------------------------------------------------------------

    def _shard_for_new_row(self, table: str, row: Mapping[str, Any]) -> int:
        """Home shard for a new row (sharded placements only)."""
        placement = self.router.placement(table)
        shard_map = self.router.map
        if placement.kind == ROOT:
            pk = row[self.schema.table(table).primary_key]
            bias = self.current_bias()
            home = shard_map.shard_of(pk)
            if bias is not None and bias != home:
                self._mark_dirty(pk)
                return bias
            return home
        if placement.kind == DIRECT:
            anchor_value = row.get(placement.anchor)
            if anchor_value is None:
                return 0
            return shard_map.shard_of(anchor_value)
        if placement.kind == INDIRECT:
            parent_value = row.get(placement.parent_column)
            if parent_value is not None:
                located = self._locate(placement.parent_table, parent_value)
                if located is not None:
                    return located
            return 0
        return 0  # SYSTEM

    def insert(
        self, table: str, values: dict[str, Any], enforce_fk: bool = True
    ) -> dict[str, Any]:
        self._bump(inserts=1, statements=1)
        ts = self.schema.table(table)
        row = ts.normalize_row(values)
        pk = row[ts.primary_key]
        placement = self.router.placement(table)
        if placement.kind != GLOBAL and self._exists(table, pk):
            # Same-shard duplicates would be caught below; this catches a
            # duplicate living on another shard, with the Table's message.
            raise ConstraintError(f"{table}: duplicate primary key {pk!r}")
        if enforce_fk:
            self._check_fks_outgoing(ts, row)
        if placement.kind == GLOBAL:
            stored = self.shards[0].insert(table, values, enforce_fk=False)
            for shard in self.shards[1:]:
                shard.insert(table, values, enforce_fk=False)
            with self._stats_mu:
                self.fanout_writes += 1
        else:
            target = self._shard_for_new_row(table, row)
            stored = self.shards[target].insert(table, values, enforce_fk=False)
        if isinstance(pk, int) and pk > self._id_watermark.get(table, 0):
            self._id_watermark[table] = pk
        return stored

    def insert_many(
        self,
        table: str,
        values_list: Iterable[dict[str, Any]],
        enforce_fk: bool = True,
    ) -> list[dict[str, Any]]:
        self._bump(statements=1)
        ts = self.schema.table(table)
        rows = [ts.normalize_row(v) for v in values_list]
        if not rows:
            return []
        pk_col = ts.primary_key
        placement = self.router.placement(table)
        batch_pks = {row[pk_col] for row in rows}
        if placement.kind != GLOBAL:
            for row in rows:
                if self._exists(table, row[pk_col]):
                    raise ConstraintError(
                        f"{table}: duplicate primary key {row[pk_col]!r}"
                    )
        if enforce_fk:
            for fk in ts.foreign_keys:
                distinct = {row[fk.column] for row in rows}
                distinct.discard(None)
                if fk.parent_table == table:
                    distinct -= batch_pks
                for value in distinct:
                    if not self._exists(fk.parent_table, value):
                        raise ForeignKeyError(
                            f"{table}.{fk.column}={value!r} references missing "
                            f"{fk.parent_table}.{fk.parent_column}"
                        )
        if placement.kind == GLOBAL:
            stored = self.shards[0].insert_many(table, rows, enforce_fk=False)
            for shard in self.shards[1:]:
                shard.insert_many(table, rows, enforce_fk=False)
            with self._stats_mu:
                self.fanout_writes += 1
        else:
            groups: dict[int, list[dict[str, Any]]] = {}
            order: list[tuple[int, int]] = []  # (shard, position within group)
            for row in rows:
                target = self._shard_for_new_row(table, row)
                group = groups.setdefault(target, [])
                order.append((target, len(group)))
                group.append(row)
            stored_by_shard = {
                target: self.shards[target].insert_many(
                    table, group, enforce_fk=False
                )
                for target, group in groups.items()
            }
            stored = [stored_by_shard[t][pos] for t, pos in order]
        self._bump(inserts=len(rows))
        top = max((row[pk_col] for row in rows if isinstance(row[pk_col], int)), default=0)
        if top > self._id_watermark.get(table, 0):
            self._id_watermark[table] = top
        return stored

    def _note_anchor_change(
        self, table: str, shard_index: int, changes: Mapping[str, Any]
    ) -> None:
        """Mark owners dirty when a row's anchor moves off its home."""
        placement = self.router.placement(table)
        if placement.kind == DIRECT and placement.anchor in changes:
            value = changes[placement.anchor]
            if value is not None and self.router.map.shard_of(value) != shard_index:
                self._mark_dirty(value)
        elif placement.kind == ROOT:
            pk_col = self.schema.table(table).primary_key
            if pk_col in changes:
                value = changes[pk_col]
                if value is not None and self.router.map.shard_of(value) != shard_index:
                    self._mark_dirty(value)

    def _update_one(
        self,
        table: str,
        pk_value: Any,
        changes: Mapping[str, Any],
        enforce_fk: bool = True,
    ) -> dict[str, Any]:
        self._bump(updates=1)
        ts = self.schema.table(table)
        placement = self.router.placement(table)
        if placement.kind == GLOBAL:
            if self.shards[0].table(table).rid_of(pk_value) is None:
                raise NoSuchRowError(f"{table}: no row with pk {pk_value!r}")
            if enforce_fk:
                self._check_update_fks(ts, 0, pk_value, changes)
            new = self.shards[0].update_by_pk(table, pk_value, changes, enforce_fk=False)
            for shard in self.shards[1:]:
                shard.update_by_pk(table, pk_value, changes, enforce_fk=False)
            with self._stats_mu:
                self.fanout_writes += 1
            return new
        located = self._locate(table, pk_value)
        if located is None:
            raise NoSuchRowError(f"{table}: no row with pk {pk_value!r}")
        if enforce_fk:
            self._check_update_fks(ts, located, pk_value, changes)
        if ts.primary_key in changes:
            new_pk = changes[ts.primary_key]
            if new_pk != pk_value:
                other = self._locate(table, new_pk)
                if other is not None and other != located:
                    raise ConstraintError(
                        f"{table}: duplicate primary key {new_pk!r}"
                    )
        new = self.shards[located].update_by_pk(
            table, pk_value, changes, enforce_fk=False
        )
        new_pk = new[ts.primary_key]
        if new_pk != pk_value:
            # The home shard checked its own references post-mutation
            # (enforce_fk=False skips it, so do the whole check here).
            self._check_pk_change_references(table, pk_value)
        self._note_anchor_change(table, located, changes)
        return new

    def _check_update_fks(
        self,
        ts: TableSchema,
        shard_index: int,
        pk_value: Any,
        changes: Mapping[str, Any],
    ) -> None:
        """Post-image outgoing-FK check, mirroring ``Database._update_one``."""
        view = self.shards[shard_index].table(ts.name).view(pk_value)
        for fk in ts.foreign_keys:
            if fk.column in changes:
                value = changes[fk.column]
                if value is not None:
                    value = coerce(value, ts.column(fk.column).ctype)
            else:
                value = view[fk.column]
            if value is None:
                continue
            if not self._exists(fk.parent_table, value):
                raise ForeignKeyError(
                    f"{ts.name}.{fk.column}={value!r} references "
                    f"missing {fk.parent_table}.{fk.parent_column}"
                )

    def _check_pk_change_references(self, table: str, old_pk: Any) -> None:
        for child_schema, fk in self.schema.referencing(table):
            if self.table(child_schema.name).referencing_rows(
                fk.column, old_pk, sort=False
            ):
                raise ForeignKeyError(
                    f"cannot change primary key {table}.{old_pk!r}: "
                    f"still referenced by {child_schema.name}.{fk.column}"
                )

    def update_by_pk(
        self,
        table: str,
        pk_value: Any,
        changes: Mapping[str, Any],
        enforce_fk: bool = True,
    ) -> dict[str, Any]:
        self._bump(statements=1)
        return self._update_one(table, pk_value, changes, enforce_fk)

    def update(
        self,
        table: str,
        where: str | Predicate,
        changes: Mapping[str, Any],
        params: Mapping[str, Any] | None = None,
    ) -> int:
        self._bump(statements=1)
        rows = self.select(table, where, params)
        pk_col = self.schema.table(table).primary_key
        for row in rows:
            self._update_one(table, row[pk_col], changes)
        return len(rows)

    def _update_many_core(
        self,
        table: str,
        updates: list[tuple[Any, Mapping[str, Any]]],
        enforce_fk: bool,
    ) -> list[dict[str, Any]]:
        if not updates:
            return []
        ts = self.schema.table(table)
        pk_col = ts.primary_key
        if any(pk_col in changes for _pk, changes in updates):
            # Primary-key renumbering needs full per-row reference checks
            # (mirrors the monolith's per-row fallback).
            return [self._update_one(table, pk, ch, enforce_fk) for pk, ch in updates]
        placement = self.router.placement(table)
        if placement.kind == GLOBAL:
            for pk, _ch in updates:
                if self.shards[0].table(table).rid_of(pk) is None:
                    raise NoSuchRowError(f"{table}: no row with {pk_col}={pk!r}")
            if enforce_fk:
                self._check_batch_update_fks(ts, updates)
            out = self.shards[0].update_many(table, updates, enforce_fk=False)
            for shard in self.shards[1:]:
                shard.update_many(table, updates, enforce_fk=False)
            with self._stats_mu:
                self.fanout_writes += 1
            self._bump(updates=len(updates))
            return out
        located: list[int] = []
        for pk, _changes in updates:
            where_at = self._locate(table, pk)
            if where_at is None:
                raise NoSuchRowError(f"{table}: no row with {pk_col}={pk!r}")
            located.append(where_at)
        if enforce_fk:
            self._check_batch_update_fks(ts, updates)
        groups: dict[int, list[tuple[Any, Mapping[str, Any]]]] = {}
        order: list[tuple[int, int]] = []
        for shard_index, (pk, changes) in zip(located, updates):
            group = groups.setdefault(shard_index, [])
            order.append((shard_index, len(group)))
            group.append((pk, changes))
        results = {
            shard_index: self.shards[shard_index].update_many(
                table, group, enforce_fk=False
            )
            for shard_index, group in groups.items()
        }
        for shard_index, group in groups.items():
            for _pk, changes in group:
                self._note_anchor_change(table, shard_index, changes)
        self._bump(updates=len(updates))
        return [results[s][pos] for s, pos in order]

    def _check_batch_update_fks(
        self, ts: TableSchema, updates: list[tuple[Any, Mapping[str, Any]]]
    ) -> None:
        """Distinct-value FK check, mirroring ``Database._update_batch``."""
        for fk in ts.foreign_keys:
            ctype = ts.column(fk.column).ctype
            distinct = set()
            for _pk, changes in updates:
                if fk.column in changes and changes[fk.column] is not None:
                    distinct.add(coerce(changes[fk.column], ctype))
            for value in distinct:
                if not self._exists(fk.parent_table, value):
                    raise ForeignKeyError(
                        f"{ts.name}.{fk.column}={value!r} references "
                        f"missing {fk.parent_table}.{fk.parent_column}"
                    )

    def update_many(
        self,
        table: str,
        updates: Iterable[tuple[Any, Mapping[str, Any]]],
        enforce_fk: bool = True,
    ) -> list[dict[str, Any]]:
        self._bump(statements=1)
        return self._update_many_core(table, list(updates), enforce_fk)

    def update_where(
        self,
        table: str,
        where: str | Predicate,
        changes: Mapping[str, Any] | str | SetClause,
        params: Mapping[str, Any] | None = None,
    ) -> int:
        self._bump(statements=1, selects=1)
        ts = self.schema.table(table)
        pk_col = ts.primary_key
        placement = self.router.placement(table)
        if isinstance(changes, (str, SetClause)):
            clause = parse_set(changes)
            assigned = {item.column for item in clause.items}
            fk_cols = {fk.column for fk in ts.foreign_keys}
            if pk_col in assigned or (assigned & fk_cols):
                raise ShardError(
                    "sharded update_where cannot assign primary-key or "
                    "foreign-key columns through SET expressions; use a "
                    "mapping change set"
                )
            # FK-free SET expressions are safe to evaluate shard-locally.
            indices = self._route_read(table, where, params)
            total = 0
            for position, i in enumerate(indices):
                n = self.shards[i].update_where(table, where, changes, params)
                if placement.kind != GLOBAL or position == 0:
                    total += n
            self._bump(updates=total)
            return total
        indices = (
            self._write_indices(table)
            if placement.kind == GLOBAL
            else self._route_read(table, where, params)
        )
        total = 0
        checked = False
        for position, i in enumerate(indices):
            rows = self.shards[i].select(table, where, params)
            if not rows:
                continue
            if not checked:
                self._check_batch_update_fks(ts, [(None, changes)])
                checked = True
            self.shards[i].update_many(
                table, [(row[pk_col], changes) for row in rows], enforce_fk=False
            )
            self._note_anchor_change(table, i, changes)
            if placement.kind != GLOBAL or position == 0:
                total += len(rows)
        self._bump(updates=total)
        return total

    # -- deletes -----------------------------------------------------------------

    def delete(
        self,
        table: str,
        where: str | Predicate,
        params: Mapping[str, Any] | None = None,
    ) -> int:
        self._bump(statements=1)
        rows = self.select(table, where, params)
        pk_col = self.schema.table(table).primary_key
        for row in rows:
            self.delete_by_pk(table, row[pk_col])
        return len(rows)

    def delete_by_pk(
        self, table: str, pk_value: Any, enforce_fk: bool = True
    ) -> dict[str, Any]:
        placement = self.router.placement(table)
        if placement.kind == GLOBAL:
            if self.shards[0].table(table).rid_of(pk_value) is None:
                raise NoSuchRowError(f"{table}: no row with pk {pk_value!r}")
            if enforce_fk:
                self._resolve_incoming(table, pk_value)
            self._bump(deletes=1, statements=1)
            old = self.shards[0].delete_by_pk(table, pk_value, enforce_fk=False)
            for shard in self.shards[1:]:
                shard.delete_by_pk(table, pk_value, enforce_fk=False)
            with self._stats_mu:
                self.fanout_writes += 1
            return old
        located = self._locate(table, pk_value)
        if located is None:
            raise NoSuchRowError(f"{table}: no row with pk {pk_value!r}")
        if enforce_fk:
            self._resolve_incoming(table, pk_value)
        self._bump(deletes=1, statements=1)
        return self.shards[located].delete_by_pk(table, pk_value, enforce_fk=False)

    def _resolve_incoming(self, table: str, pk_value: Any) -> None:
        """Apply ON DELETE actions across shards, in the monolith's order."""
        for child_schema, fk in self.schema.referencing(table):
            self._bump(selects=1)
            referencing = self.table(child_schema.name).referencing_rows(
                fk.column, pk_value
            )
            if not referencing:
                continue
            if fk.on_delete is FKAction.RESTRICT:
                raise ForeignKeyError(
                    f"cannot delete {table}.{pk_value!r}: referenced by "
                    f"{len(referencing)} row(s) of {child_schema.name}.{fk.column} "
                    f"(ON DELETE RESTRICT)"
                )
            pk_col = child_schema.primary_key
            if fk.on_delete is FKAction.CASCADE:
                for row in referencing:
                    self.delete_by_pk(child_schema.name, row[pk_col])
            elif fk.on_delete is FKAction.SET_NULL:
                for row in referencing:
                    self._update_one(child_schema.name, row[pk_col], {fk.column: None})

    def delete_many(
        self, table: str, pk_values: Iterable[Any], enforce_fk: bool = True
    ) -> int:
        self._bump(statements=1)
        return self._delete_batch(table, pk_values, enforce_fk)

    def delete_where(
        self,
        table: str,
        where: str | Predicate,
        params: Mapping[str, Any] | None = None,
    ) -> int:
        self._bump(statements=1, selects=1)
        indices = self._route_read(table, where, params)
        placement = self.router.placement(table)
        if placement.kind == GLOBAL:
            indices = [0]
        pk_col = self.schema.table(table).primary_key
        pks: list[Any] = []
        for i in indices:
            pks.extend(
                row[pk_col]
                for _rid, row in self.shards[i].table(table).match_rows(
                    parse_where(where), params
                )
            )
        return self._delete_batch(table, pks, True)

    def _delete_batch(
        self, table: str, pk_values: Iterable[Any], enforce_fk: bool
    ) -> int:
        pks = list(dict.fromkeys(pk_values))
        if not pks:
            return 0
        ts = self.schema.table(table)
        placement = self.router.placement(table)
        fan_out = placement.kind == GLOBAL
        located: dict[Any, int] = {}
        for pk in pks:
            at = 0 if fan_out else self._locate(table, pk)
            if at is None or self.shards[at].table(table).rid_of(pk) is None:
                raise NoSuchRowError(f"{table}: no row with pk {pk!r}")
            located[pk] = at
        if enforce_fk:
            doomed = set(pks)
            for child_schema, fk in self.schema.referencing(table):
                self._bump(selects=len(pks))
                child_view = self.table(child_schema.name)
                child_pk = child_schema.primary_key
                hits: list[Any] = []
                seen: set[Any] = set()
                for pk in pks:
                    for row in child_view.referencing_rows(fk.column, pk, sort=False):
                        cpk = row[child_pk]
                        if child_schema.name == table and cpk in doomed:
                            continue
                        if cpk not in seen:
                            seen.add(cpk)
                            hits.append(cpk)
                if not hits:
                    continue
                if fk.on_delete is FKAction.RESTRICT:
                    raise ForeignKeyError(
                        f"cannot delete from {table}: {len(hits)} row(s) of "
                        f"{child_schema.name}.{fk.column} still reference the "
                        f"batch (ON DELETE RESTRICT)"
                    )
                if fk.on_delete is FKAction.CASCADE:
                    self._delete_batch(child_schema.name, hits, True)
                elif fk.on_delete is FKAction.SET_NULL:
                    self._update_many_core(
                        child_schema.name,
                        [(cpk, {fk.column: None}) for cpk in hits],
                        enforce_fk=False,
                    )
        if fan_out:
            for shard in self.shards:
                shard.delete_many(table, pks, enforce_fk=False)
            with self._stats_mu:
                self.fanout_writes += 1
        else:
            groups: dict[int, list[Any]] = {}
            for pk in pks:
                groups.setdefault(located[pk], []).append(pk)
            for shard_index, group in groups.items():
                self.shards[shard_index].delete_many(table, group, enforce_fk=False)
        self._bump(deletes=len(pks))
        return len(pks)

    # -- integrity ---------------------------------------------------------------

    def check_row_fks(self, table: str, pk_value: Any) -> list[str]:
        view = self.table(table).get(pk_value)
        if view is None:
            return []
        problems = []
        for fk in self.schema.table(table).foreign_keys:
            value = view[fk.column]
            if value is None:
                continue
            if not self._exists(fk.parent_table, value):
                problems.append(
                    f"{table}.{fk.column}={value!r} references missing "
                    f"{fk.parent_table}.{fk.parent_column}"
                )
        return problems

    def check_integrity(self) -> list[str]:
        problems = []
        for ts in self.schema:
            seen_pks: set[Any] = set()
            for index in self._read_indices(ts.name):
                for row in self.shards[index].table(ts.name).rows():
                    pk = row[ts.primary_key]
                    if pk in seen_pks:
                        problems.append(
                            f"{ts.name}: primary key {pk!r} present on "
                            f"multiple shards"
                        )
                    seen_pks.add(pk)
                    for fk in ts.foreign_keys:
                        value = row[fk.column]
                        if value is None:
                            continue
                        if not self._exists(fk.parent_table, value):
                            problems.append(
                                f"{ts.name}.{fk.column}={value!r} dangles "
                                f"(row {ts.primary_key}={pk!r})"
                            )
        return problems

    def assert_integrity(self) -> None:
        problems = self.check_integrity()
        if problems:
            from repro.errors import IntegrityViolation

            raise IntegrityViolation(
                f"{len(problems)} dangling foreign key(s): " + "; ".join(problems[:5])
            )

    # -- misc --------------------------------------------------------------------

    def next_id(self, table: str) -> int:
        current = self.table(table).max_pk()
        if current is None:
            current = 0
        if not isinstance(current, int):
            raise TransactionError(
                f"next_id requires integer primary keys, {table} has {current!r}"
            )
        with self._id_lock:
            allocated = max(current, self._id_watermark.get(table, 0)) + 1
            self._id_watermark[table] = allocated
        return allocated

    def row_counts(self) -> dict[str, int]:
        return {ts.name: len(self.table(ts.name)) for ts in self.schema}

    def total_rows(self) -> int:
        return sum(self.row_counts().values())

    def close(self) -> None:
        if self._scatter_pool is not None:
            self._scatter_pool.shutdown(wait=False)
            self._scatter_pool = None

    # -- observability -----------------------------------------------------------

    _METRIC_ALIASES = dict(Database._METRIC_ALIASES)

    def _register_obs(self) -> None:
        reg = self.obs
        for name in ("selects", "inserts", "updates", "deletes", "statements"):
            reg.gauge(f"storage.{name}", lambda n=name: getattr(self.stats, n))
        reg.gauge("storage.total", lambda: self.stats.total)
        reg.gauge("storage.writes", lambda: self.stats.writes)
        reg.gauge(
            "storage.rows_examined",
            lambda: sum(
                t.rows_examined
                for shard in self.shards
                for t in shard._tables.values()
            ),
        )
        reg.gauge("storage.tables", lambda: len(self.schema.table_names))
        reg.gauge("storage.rows", self.total_rows)
        reg.gauge(
            "plancache.hits", lambda: sum(s.plans.hits for s in self.shards)
        )
        reg.gauge(
            "plancache.misses", lambda: sum(s.plans.misses for s in self.shards)
        )
        reg.gauge(
            "plancache.entries", lambda: sum(len(s.plans) for s in self.shards)
        )
        reg.gauge("plancache.generation", lambda: self.shards[0].plans.generation)
        reg.gauge("shard.shards", lambda: self.n_shards)
        reg.gauge("shard.dirty_owners", lambda: len(self.router.map.dirty))
        reg.gauge("shard.overrides", lambda: len(self.router.map.overrides))
        reg.gauge("shard.migrations", lambda: self.router.map.migrations_done)
        reg.gauge("shard.routed_reads", lambda: self.routed_reads)
        reg.gauge("shard.scatter_reads", lambda: self.scatter_reads)
        reg.gauge("shard.fanout_writes", lambda: self.fanout_writes)
        reg.gauge(
            "shard.statements_total",
            lambda: sum(s.stats.statements for s in self.shards),
        )
        for index, shard in enumerate(self.shards):
            reg.gauge(
                f"shard.s{index}.rows", lambda s=shard: s.total_rows()
            )
            reg.gauge(
                f"shard.s{index}.statements", lambda s=shard: s.stats.statements
            )
        reg.register_aliases(self._METRIC_ALIASES)

    def metrics(self) -> MetricsView:
        return self.obs.view()


class _ShardedTransaction:
    def __init__(self, sdb: ShardedDatabase) -> None:
        self._sdb = sdb

    def __enter__(self) -> ShardedDatabase:
        self._sdb.begin()
        return self._sdb

    def __exit__(self, exc_type, exc, tb) -> bool:
        if exc_type is None:
            self._sdb.commit()
        else:
            self._sdb.rollback()
        return False


# -- construction ------------------------------------------------------------------


def shard_database(
    db: Database,
    n_shards: int,
    map_path: str | Path | None = None,
    user_table: str = "users",
    shard_map: ShardMap | None = None,
) -> ShardedDatabase:
    """Partition an existing :class:`Database` into N owner-hash shards.

    Placement is deterministic (sha256 owner tokens + the persisted shard
    map), so partitioning the same snapshot with the same map always
    produces the same layout — per-shard WAL replay depends on this.
    System tables land on shard 0; global tables are copied to every
    shard; owner-anchored rows go to their owner's home (NULL anchors to
    shard 0); indirect tables follow their parent row's shard.
    """
    source_schema = db.schema
    if shard_map is None:
        shard_map = ShardMap.open(map_path, n_shards)
    elif map_path is not None and shard_map.path is None:
        shard_map.path = Path(map_path)
    if shard_map.n_shards != n_shards:
        raise ShardError(
            f"shard map is for {shard_map.n_shards} shard(s), requested {n_shards}"
        )
    shards = []
    for index in range(n_shards):
        schema = Schema()
        for ts in source_schema:
            if ts.name.startswith("_") and index > 0:
                continue
            schema.add(ts)
        shards.append(Database(schema))
    router = Router(shards[0].schema, shard_map, user_table)
    sdb = ShardedDatabase(shards, router)
    sdb._id_watermark.update(db._id_watermark)

    # Copy rows, parents before children so indirect placement can look
    # up where each parent row landed.
    placed: dict[str, dict[Any, int]] = {}
    for ts in _topo_tables(source_schema):
        placement = router.placement(ts.name)
        rows = [dict(row) for row in db.table(ts.name).rows()]
        if placement.kind == GLOBAL:
            for shard in shards:
                if rows:
                    shard.table(ts.name).insert_rows(rows)
            continue
        groups: dict[int, list[dict[str, Any]]] = {}
        track = placement.kind in (ROOT, DIRECT)
        table_placed = placed.setdefault(ts.name, {})
        for row in rows:
            if placement.kind == SYSTEM:
                target = 0
            elif placement.kind == ROOT:
                target = shard_map.shard_of(row[ts.primary_key])
            elif placement.kind == DIRECT:
                anchor_value = row[placement.anchor]
                target = 0 if anchor_value is None else shard_map.shard_of(anchor_value)
            else:  # INDIRECT: follow the parent row's shard
                parent_value = row[placement.parent_column]
                target = placed.get(placement.parent_table, {}).get(parent_value, 0)
            groups.setdefault(target, []).append(row)
            if track or placement.kind == INDIRECT:
                table_placed[row[ts.primary_key]] = target
        for target, group in groups.items():
            shards[target].table(ts.name).insert_rows(group)
    return sdb


def _topo_tables(schema: Schema) -> list[TableSchema]:
    """Tables ordered parents-first (self-FKs and cycles break arbitrarily)."""
    remaining = {ts.name: ts for ts in schema}
    ordered: list[TableSchema] = []
    done: set[str] = set()
    while remaining:
        progressed = False
        for name in list(remaining):
            ts = remaining[name]
            parents = {
                fk.parent_table
                for fk in ts.foreign_keys
                if fk.parent_table != name and fk.parent_table in remaining
            }
            if not parents:
                ordered.append(ts)
                done.add(name)
                del remaining[name]
                progressed = True
        if not progressed:  # FK cycle: emit the rest in declaration order
            ordered.extend(remaining.values())
            break
    return ordered


def collapse(sdb: ShardedDatabase) -> Database:
    """Fold a sharded database back into one monolithic :class:`Database`."""
    schema = Schema()
    for ts in sdb.schema:
        schema.add(ts)
    merged = Database(schema)
    for ts in _topo_tables(sdb.schema):
        rows = [dict(row) for row in sdb.table(ts.name).rows()]
        if rows:
            merged.table(ts.name).insert_rows(rows)
    watermarks = dict(sdb._id_watermark)
    for shard in sdb.shards:
        for table, top in shard._id_watermark.items():
            if top > watermarks.get(table, 0):
                watermarks[table] = top
    merged._id_watermark.update(watermarks)
    return merged
