"""Atomic owner migration between shards.

Rebalancing moves one owner's full FK-ownership subtree — rows in every
owner-anchored table plus the owner's vault entries — from wherever it
lives onto a chosen target shard, then flips the shard map. The protocol
is journaled so a crash at any step recovers to a consistent placement:

1. **intent** — persist ``{owner, to_shard}`` in the shard map file.
   Until the final flip, the map still routes reads to the source (the
   migration intent marks the owner "not clean", so owner-eq predicates
   scatter and see the rows wherever they are).
2. **copy** — insert the owner's rows on the target shard, children
   ordered after parents, inside a target-shard transaction (one WAL
   unit journals the whole copy).
3. **delete** — remove the rows from their source shards, leaves first,
   inside per-shard transactions (journaled by each source WAL).
4. **vault** — move the owner's vault entries onto the target store.
5. **flip** — record the override ``owner -> to_shard`` in the map,
   clear the intent, persist. Only now does routing change.

Crash matrix (what :func:`recover_migration` does per torn step):

========  ==========================================  ==================
crashed    observable state                            recovery
========  ==========================================  ==================
intent     intent persisted, no rows moved             clear intent
copy       rows on source AND (partially) target       delete target copy
delete     rows on target, partially on source         finish the delete,
                                                       then roll the copy
                                                       back to source
vault      rows only on target, vault split            move rows + vault
                                                       back to source
========  ==========================================  ==================

Recovery always rolls **back to the source shard** (the issue's
contract): the source is the placement the persisted map still routes
to, so rolling forward would require trusting exactly the state the
crash interrupted. The migration can simply be retried afterwards.

Locking: when the sharded database has a lock hook attached, the
migration X-locks the owner's tables on both source and target shards
under its own token for the whole protocol, so concurrent disguise jobs
for the same owner serialize against the move.
"""

from __future__ import annotations

from typing import Any

from repro.errors import ShardError
from repro.service.locks import MODE_X
from repro.shard.engine import ShardedDatabase, shard_lock_name
from repro.shard.router import DIRECT, GLOBAL, INDIRECT, ROOT, SYSTEM
from repro.shard.vault import ShardedVault

__all__ = ["migrate_owner", "recover_migration", "owner_rows"]

#: Injection points for the crash-matrix tests: raising _MigrationCrash
#: after the named step simulates a failure with that step's effects
#: already durable.
CRASH_POINTS = ("intent", "copy", "delete", "vault")


class _MigrationCrash(RuntimeError):
    """Injected crash (tests only)."""


def owner_rows(
    sdb: ShardedDatabase, owner: Any
) -> dict[str, dict[int, list[dict[str, Any]]]]:
    """The owner's subtree: ``{table: {shard_index: [row, ...]}}``.

    Parents-first table order (root table first, then direct tables in
    schema order, then indirect tables), so the copy step can insert in
    iteration order and the delete step can walk it reversed.
    """
    router = sdb.router
    out: dict[str, dict[int, list[dict[str, Any]]]] = {}
    root_pks: dict[str, list[Any]] = {}
    ordered = sorted(
        (ts for ts in sdb.schema),
        key=lambda ts: {ROOT: 0, DIRECT: 1, INDIRECT: 2}.get(
            router.placement(ts.name).kind, 3
        ),
    )
    for ts in ordered:
        placement = router.placement(ts.name)
        if placement.kind in (GLOBAL, SYSTEM):
            continue
        per_shard: dict[int, list[dict[str, Any]]] = {}
        for index in range(sdb.n_shards):
            table = sdb.shards[index].table(ts.name)
            if placement.kind == ROOT:
                row = table.get(owner)
                rows = [dict(row)] if row is not None else []
            elif placement.kind == DIRECT:
                rows = [
                    dict(row)
                    for row in table.referencing_rows(placement.anchor, owner)
                ]
            else:  # INDIRECT: rows referencing the owner's parent rows
                parents = root_pks.get(placement.parent_table, [])
                rows = []
                for parent_pk in parents:
                    rows.extend(
                        dict(row)
                        for row in table.referencing_rows(
                            placement.parent_column, parent_pk
                        )
                    )
            if rows:
                per_shard[index] = rows
        if per_shard:
            out[ts.name] = per_shard
            pks = [
                row[ts.primary_key] for rows in per_shard.values() for row in rows
            ]
            root_pks[ts.name] = pks
    return out


def _lock_names(sdb: ShardedDatabase, tables: list[str]) -> list[str]:
    names = []
    for table in tables:
        for index in range(sdb.n_shards):
            names.append(shard_lock_name(index, table))
    return sorted(names)


def migrate_owner(
    sdb: ShardedDatabase,
    owner: Any,
    to_shard: int,
    vault: ShardedVault | None = None,
    crash_after: str | None = None,
) -> dict[str, int]:
    """Move *owner*'s subtree onto shard *to_shard*; returns a summary.

    ``crash_after`` (tests only) aborts after the named protocol step
    with that step's effects durable, leaving the torn state for
    :func:`recover_migration`.
    """
    if not 0 <= to_shard < sdb.n_shards:
        raise ShardError(f"no shard {to_shard} (have {sdb.n_shards})")
    if crash_after is not None and crash_after not in CRASH_POINTS:
        raise ShardError(f"unknown crash point {crash_after!r}")
    shard_map = sdb.router.map
    hook = sdb._lock_hook
    token = f"migrate-{to_shard}"
    subtree = owner_rows(sdb, owner)
    tables = list(subtree)
    locked = False
    if hook is not None:
        hook.start_job(token)
        for name in _lock_names(sdb, tables):
            hook.manager.acquire(token, name, MODE_X, timeout=hook.timeout)
        locked = True
    try:
        # 1. intent
        shard_map.begin_migration(owner, to_shard)
        if crash_after == "intent":
            raise _MigrationCrash("intent")
        # Re-read under the locks: rows may have moved since the unlocked
        # first pass (the lock names were derived only from table *names*,
        # which cannot change concurrently).
        subtree = owner_rows(sdb, owner)
        copied = 0
        # 2. copy (parents first), one transaction on the target shard
        target = sdb.shards[to_shard]
        with target.transaction():
            for table, per_shard in subtree.items():
                for index, rows in per_shard.items():
                    if index == to_shard:
                        continue
                    target.insert_many(table, rows, enforce_fk=False)
                    copied += len(rows)
        if crash_after == "copy":
            raise _MigrationCrash("copy")
        # 3. delete at sources (children first)
        for table in reversed(list(subtree)):
            pk_col = sdb.schema.table(table).primary_key
            for index, rows in subtree[table].items():
                if index == to_shard:
                    continue
                source = sdb.shards[index]
                with source.transaction():
                    source.delete_many(
                        table, [row[pk_col] for row in rows], enforce_fk=False
                    )
        if crash_after == "delete":
            raise _MigrationCrash("delete")
        # 4. vault entries follow the rows
        moved_entries = 0
        if vault is not None:
            moved_entries = vault.move_owner(owner, to_shard)
        if crash_after == "vault":
            raise _MigrationCrash("vault")
        # 5. flip the map (persisted) — routing changes only here
        shard_map.finish_migration(owner, to_shard)
        return {"rows": copied, "vault_entries": moved_entries}
    finally:
        if locked:
            hook.end_job()


def recover_migration(
    sdb: ShardedDatabase, vault: ShardedVault | None = None
) -> dict[str, Any] | None:
    """Roll a torn migration back to the source shard.

    Reads the persisted intent from the shard map; returns a summary of
    what was undone, or ``None`` when no migration was in flight. Safe
    to call unconditionally at startup (the CLI does).
    """
    shard_map = sdb.router.map
    intent = shard_map.migration
    if intent is None:
        return None
    owner = intent["value"]
    to_shard = int(intent["to"])
    undone_rows = 0
    restored_rows = 0
    subtree = owner_rows(sdb, owner)
    target = sdb.shards[to_shard]
    # Walk children-first when deleting from the target; a row that also
    # exists at a source shard is a torn copy (delete the target copy),
    # one that exists only at the target is a torn delete (copy it back
    # to a source shard, then delete it at the target).
    for table in reversed(list(subtree)):
        pk_col = sdb.schema.table(table).primary_key
        per_shard = subtree[table]
        target_rows = per_shard.get(to_shard, [])
        if not target_rows:
            continue
        source_pks = {
            row[pk_col]
            for index, rows in per_shard.items()
            if index != to_shard
            for row in rows
        }
        torn_copies = [r for r in target_rows if r[pk_col] in source_pks]
        orphans = [r for r in target_rows if r[pk_col] not in source_pks]
        if orphans:
            # Source placement for this owner is its hash home (overrides
            # for this owner cannot exist while its migration is open).
            source = sdb.shards[_source_shard(sdb, owner, to_shard)]
            with source.transaction():
                # parents-first within the table's own rows is trivial
                # (single table); cross-table order is handled by walking
                # tables in reverse on delete and re-inserting per table.
                source.insert_many(table, orphans, enforce_fk=False)
            restored_rows += len(orphans)
        with target.transaction():
            target.delete_many(
                table, [row[pk_col] for row in target_rows], enforce_fk=False
            )
        undone_rows += len(target_rows)
    if vault is not None:
        source = _source_shard(sdb, owner, to_shard)
        moved = vault.move_owner(owner, source)
    else:
        moved = 0
    shard_map.abort_migration()
    return {
        "owner": owner,
        "to_shard": to_shard,
        "rows_removed_from_target": undone_rows,
        "rows_restored_to_source": restored_rows,
        "vault_entries_returned": moved,
    }


def _source_shard(sdb: ShardedDatabase, owner: Any, to_shard: int) -> int:
    """The shard the owner lived on before the torn migration."""
    home = sdb.router.map.shard_of(owner)
    if home != to_shard:
        return home
    # Migrating back to the hash home: any shard holding the root row
    # other than the target is the source; default to the home.
    root = sdb.router.analyzer.user_table
    for index in range(sdb.n_shards):
        if index == to_shard:
            continue
        if sdb.shards[index].table(root).rid_of(owner) is not None:
            return index
    return home
