"""Owner-hash placement: deterministic shard routing from the FK graph.

The paper's disguise specs walk a per-user ownership chain (every table a
GDPR disguise touches hangs off ``users`` through foreign keys), and
PrivLava (arXiv:2304.04545) shows the same FK-rooted hierarchy cleanly
partitions relational data per user. This module turns that observation
into placement machinery:

* :func:`owner_token` / :func:`owner_shard` — canonical, typed owner
  tokens hashed with :mod:`hashlib` (sha256 over an explicit UTF-8
  encoding). The builtin ``hash()`` is **never** used: it is salted per
  process (``PYTHONHASHSEED``), which would silently reshuffle every
  owner between runs and orphan their rows and vault entries.
* :class:`OwnershipAnalyzer` — classifies each table from the schema's
  FK graph: the user root, *direct* tables anchored by a user FK,
  *indirect* tables co-located through a sharded parent, *global*
  tables with no ownership chain (replicated to every shard), and
  ``_``-prefixed *system* tables (homed on shard 0).
* :class:`ShardMap` — the persisted placement state: shard count,
  per-owner overrides written by migrations, the dirty-owner set (owners
  whose rows may sit off their hash home), and the in-flight migration
  intent. Serialized as canonical sorted JSON so a map built in one
  process reloads byte-identically in any other.
* :class:`Router` — per-statement classification: a read whose predicate
  pins the table's anchor column to concrete *clean* owners is
  single-shard; anything else scatters; global tables fan out.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.errors import ShardError
from repro.storage.predicate import And, ColumnRef, Comparison, InList, Literal, Param, Predicate
from repro.storage.schema import Schema, TableSchema

__all__ = [
    "DIRECT",
    "GLOBAL",
    "INDIRECT",
    "ROOT",
    "SYSTEM",
    "OwnershipAnalyzer",
    "Router",
    "ShardMap",
    "TablePlacement",
    "owner_shard",
    "owner_token",
]

# Table placement classes (see OwnershipAnalyzer).
ROOT = "root"          # the user table itself; anchored by its primary key
DIRECT = "direct"      # anchored by a foreign key straight to the user table
INDIRECT = "indirect"  # co-located with a sharded parent (no user FK of its own)
GLOBAL = "global"      # no ownership chain; replicated to every shard
SYSTEM = "system"      # engine-internal ``_`` table; homed on shard 0


def owner_token(value: Any) -> str:
    """Canonical typed token for an owner value.

    The type tag keeps ``1``, ``"1"`` and ``1.0`` distinct — Python's
    ``hash()`` would conflate them *and* salt the result per process.
    """
    if value is None:
        return "n:"
    if isinstance(value, bool):
        return f"t:{int(value)}"
    if isinstance(value, int):
        return f"i:{value}"
    if isinstance(value, str):
        return "s:" + value
    if isinstance(value, bytes):
        return "b:" + value.hex()
    if isinstance(value, float):
        return "f:" + repr(value)
    return "o:" + repr(value)


def owner_shard(value: Any, n_shards: int) -> int:
    """Deterministic hash placement: sha256 of the canonical token."""
    digest = hashlib.sha256(owner_token(value).encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % n_shards


@dataclass(frozen=True)
class TablePlacement:
    """How one table's rows map to shards."""

    table: str
    kind: str                       # ROOT / DIRECT / INDIRECT / GLOBAL / SYSTEM
    anchor: str | None = None       # owner column (ROOT: the pk; DIRECT: user FK)
    parent_column: str | None = None  # INDIRECT: local FK column to the parent
    parent_table: str | None = None   # INDIRECT: the sharded parent


class OwnershipAnalyzer:
    """Classify tables by their FK ownership chain to the user root.

    Anchor selection for direct tables: the first **non-nullable** FK to
    the user table in declared order, else the first declared user FK
    (self-FKs on the root are skipped — they are back-references, not
    ownership). Tables with no user FK follow their first declared FK
    to a sharded table (indirect co-location); tables that reach the
    root through no chain at all are global and replicate everywhere.
    """

    def __init__(self, schema: Schema, user_table: str = "users") -> None:
        self.schema = schema
        self.user_table = user_table
        self._cache: dict[str, TablePlacement] = {}

    def invalidate(self) -> None:
        """Forget cached classifications (call after DDL)."""
        self._cache.clear()

    def placement(self, table: str) -> TablePlacement:
        cached = self._cache.get(table)
        if cached is None:
            cached = self._classify(table, frozenset())
            self._cache[table] = cached
        return cached

    def placements(self) -> dict[str, TablePlacement]:
        return {ts.name: self.placement(ts.name) for ts in self.schema}

    def _classify(self, table: str, visiting: frozenset) -> TablePlacement:
        if table.startswith("_"):
            return TablePlacement(table, SYSTEM)
        if table == self.user_table:
            ts = self.schema.table(table)
            return TablePlacement(table, ROOT, anchor=ts.primary_key)
        ts = self.schema.table(table)
        user_fks = [
            fk
            for fk in ts.foreign_keys
            if fk.parent_table == self.user_table
        ]
        if user_fks:
            non_null = [
                fk for fk in user_fks if not ts.column(fk.column).nullable
            ]
            anchor_fk = non_null[0] if non_null else user_fks[0]
            return TablePlacement(table, DIRECT, anchor=anchor_fk.column)
        # No user FK: co-locate through the first FK whose parent is
        # itself sharded (cycle-safe: a table being classified doesn't
        # count as a sharded parent for its own descendants).
        for fk in ts.foreign_keys:
            if fk.parent_table == table or fk.parent_table in visiting:
                continue
            parent = self._classify(fk.parent_table, visiting | {table})
            if parent.kind in (ROOT, DIRECT, INDIRECT):
                return TablePlacement(
                    table,
                    INDIRECT,
                    parent_column=fk.column,
                    parent_table=fk.parent_table,
                )
        return TablePlacement(table, GLOBAL)


@dataclass
class ShardMap:
    """Persisted placement state: shard count, overrides, dirt, intent.

    * ``overrides`` — owner token -> shard index, written by completed
      migrations; consulted before the hash.
    * ``dirty`` — owner tokens whose rows may sit off their home shard
      (a biased placeholder insert, an anchor-value update): reads that
      would single-shard-route on such an owner scatter instead.
      Correctness never depends on placement — dirt only widens reads.
    * ``migration`` — the in-flight migration intent (owner token +
      target shard), persisted *before* any row moves so a torn
      migration is recoverable (see :mod:`repro.shard.rebalance`).
    """

    n_shards: int
    overrides: dict[str, int] = field(default_factory=dict)
    dirty: set[str] = field(default_factory=set)
    migration: dict[str, Any] | None = None
    path: Path | None = None
    migrations_done: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ShardError(f"shard count must be >= 1, got {self.n_shards}")

    # -- placement ---------------------------------------------------------------

    def shard_of(self, owner: Any) -> int:
        token = owner_token(owner)
        override = self.overrides.get(token)
        if override is not None:
            return override
        return owner_shard(owner, self.n_shards)

    def is_clean(self, owner: Any) -> bool:
        token = owner_token(owner)
        if token in self.dirty:
            return False
        return not (self.migration and self.migration.get("owner") == token)

    def mark_dirty(self, owner: Any) -> None:
        self.dirty.add(owner_token(owner))

    def clear_dirty(self, owner: Any) -> None:
        self.dirty.discard(owner_token(owner))

    # -- migration intent --------------------------------------------------------

    def begin_migration(self, owner: Any, to_shard: int) -> None:
        if self.migration is not None:
            raise ShardError(
                f"migration already in flight for {self.migration['owner']!r}"
            )
        if not (0 <= to_shard < self.n_shards):
            raise ShardError(f"target shard {to_shard} out of range")
        # Both the canonical token (for is_clean checks) and the raw
        # value (so recovery can re-gather the owner's rows) persist;
        # owners are pk values, so they are JSON-representable.
        self.migration = {
            "owner": owner_token(owner),
            "value": owner,
            "to": to_shard,
        }
        self.save()

    def finish_migration(self, owner: Any, to_shard: int) -> None:
        self.overrides[owner_token(owner)] = to_shard
        self.clear_dirty(owner)
        self.migration = None
        self.migrations_done += 1
        self.save()

    def abort_migration(self) -> None:
        self.migration = None
        self.save()

    # -- persistence -------------------------------------------------------------

    def to_json(self) -> str:
        """Canonical serialization: sorted keys, sorted dirty set."""
        return json.dumps(
            {
                "version": 1,
                "n_shards": self.n_shards,
                "overrides": self.overrides,
                "dirty": sorted(self.dirty),
                "migration": self.migration,
                "migrations_done": self.migrations_done,
            },
            sort_keys=True,
            separators=(",", ":"),
        )

    def save(self, path: str | Path | None = None) -> None:
        """Atomically persist (tmp + rename); no-op without a path."""
        target = Path(path) if path is not None else self.path
        if target is None:
            return
        self.path = target
        tmp = target.with_name(target.name + ".tmp")
        tmp.write_text(self.to_json() + "\n", encoding="utf-8")
        tmp.replace(target)

    @classmethod
    def load(cls, path: str | Path, n_shards: int | None = None) -> "ShardMap":
        path = Path(path)
        data = json.loads(path.read_text(encoding="utf-8"))
        if n_shards is not None and data["n_shards"] != n_shards:
            raise ShardError(
                f"shard map at {path} was built for {data['n_shards']} "
                f"shard(s), requested {n_shards}"
            )
        return cls(
            n_shards=data["n_shards"],
            overrides={k: int(v) for k, v in data["overrides"].items()},
            dirty=set(data.get("dirty", ())),
            migration=data.get("migration"),
            path=path,
            migrations_done=int(data.get("migrations_done", 0)),
        )

    @classmethod
    def open(
        cls, path: str | Path | None, n_shards: int
    ) -> "ShardMap":
        """Load the map at *path* if present, else a fresh one bound to it."""
        if path is not None and Path(path).exists():
            return cls.load(path, n_shards)
        return cls(n_shards=n_shards, path=None if path is None else Path(path))


class Router:
    """Statement- and row-level routing over an analyzer + shard map."""

    def __init__(
        self,
        schema: Schema,
        shard_map: ShardMap,
        user_table: str = "users",
    ) -> None:
        self.analyzer = OwnershipAnalyzer(schema, user_table)
        self.map = shard_map
        self.user_table = user_table

    @property
    def n_shards(self) -> int:
        return self.map.n_shards

    def invalidate(self) -> None:
        self.analyzer.invalidate()

    def placement(self, table: str) -> TablePlacement:
        return self.analyzer.placement(table)

    def home_shard(self, owner: Any) -> int:
        return self.map.shard_of(owner)

    # -- statement classification -------------------------------------------------

    def owner_values(
        self,
        table: str,
        pred: Predicate | None,
        params: Mapping[str, Any] | None,
    ) -> list[Any] | None:
        """Concrete owner values a predicate pins the anchor to, or None.

        Walks the top-level AND conjuncts for ``anchor = <literal/param>``
        or ``anchor IN (<literals/params>)``. Anything else — ORs, ranges,
        expressions over the anchor — returns None (scatter). NULL owner
        values are fine to route anywhere (``= NULL`` never matches), so
        they are dropped from the pinned set.
        """
        placement = self.placement(table)
        if placement.kind not in (ROOT, DIRECT) or pred is None:
            return None
        anchor = placement.anchor
        for node in _conjuncts(pred):
            values = _anchor_eq_values(node, anchor, params)
            if values is not None:
                return [v for v in values if v is not None]
        return None

    def pk_values(
        self,
        table: str,
        pred: Predicate | None,
        params: Mapping[str, Any] | None,
    ) -> list[Any] | None:
        """Concrete primary-key values a predicate pins, or None.

        Separate from :meth:`owner_values` because pk-pinned reads route
        by *probing* (facade-level pk uniqueness makes the probe exact),
        not by hashing — a row's pk says nothing about its shard unless
        the table is the root.
        """
        ts = self.analyzer.schema.table(table)
        if pred is None:
            return None
        for node in _conjuncts(pred):
            values = _anchor_eq_values(node, ts.primary_key, params)
            if values is not None:
                return [v for v in values if v is not None]
        return None

    def read_shards(
        self,
        table: str,
        pred: Predicate | None,
        params: Mapping[str, Any] | None,
        locate: Any = None,
    ) -> tuple[str, list[int]]:
        """(kind, shard indices) for a read: 'single' | 'scatter' | 'home'.

        ``home`` covers the trivially-placed classes (system/global read
        their home copy); ``single`` means the predicate pinned clean
        owners (or, with a *locate* callback, concrete primary keys whose
        rows were probed to their shards); ``scatter`` fans out to every
        shard.

        Probe routing note: a pk-pinned read locks only the shards whose
        tables hold those pks. Rows cannot move shards outside an
        X-locked migration, so the route is stable for the lock's
        lifetime; the one relaxation versus monolithic table-granular 2PL
        is that a concurrent insert of a pk that existed *nowhere* at
        probe time is not blocked (a phantom the statement's IN-list
        result may or may not include — equivalent to running just before
        the insert).
        """
        placement = self.placement(table)
        if placement.kind in (SYSTEM, GLOBAL):
            return "home", [0]
        owners = self.owner_values(table, pred, params)
        if owners is not None and all(self.map.is_clean(v) for v in owners):
            shards = sorted({self.map.shard_of(v) for v in owners})
            return "single", (shards or [0])
        if locate is not None:
            pks = self.pk_values(table, pred, params)
            if pks is not None:
                shards = sorted(
                    {s for s in (locate(table, pk) for pk in pks) if s is not None}
                )
                return "single", (shards or [0])
        return "scatter", list(range(self.n_shards))


def _conjuncts(pred: Predicate) -> Iterable[Predicate]:
    stack = [pred]
    while stack:
        node = stack.pop()
        if isinstance(node, And):
            stack.append(node.left)
            stack.append(node.right)
        else:
            yield node


def _resolve(value: Any, params: Mapping[str, Any] | None) -> tuple[bool, Any]:
    """(resolved, value) for a Literal or bound Param operand."""
    if isinstance(value, Literal):
        return True, value.value
    if isinstance(value, Param):
        if params is not None and value.name in params:
            return True, params[value.name]
    return False, None


def _anchor_eq_values(
    node: Predicate, anchor: str, params: Mapping[str, Any] | None
) -> list[Any] | None:
    """Values pinned by ``anchor = v`` / ``anchor IN (...)``, else None."""
    if isinstance(node, Comparison) and node.op == "=":
        operand = None
        if isinstance(node.left, ColumnRef) and node.left.name == anchor:
            operand = node.right
        elif isinstance(node.right, ColumnRef) and node.right.name == anchor:
            operand = node.left
        if operand is not None:
            ok, value = _resolve(operand, params)
            if ok:
                return [value]
        return None
    if (
        isinstance(node, InList)
        and not node.negated
        and isinstance(node.expr, ColumnRef)
        and node.expr.name == anchor
    ):
        values = []
        for item in node.items:
            ok, value = _resolve(item, params)
            if not ok:
                return None
            values.append(value)
        return values
    return None
