"""`ShardedVault`: one vault store per shard, routed by owner hash.

Each shard keeps its own vault (paper §4.2: vaults are *per-user*, so an
owner's entries co-locate with their rows), and the facade routes every
primitive by the shared :class:`~repro.shard.router.ShardMap` — the same
map object the engine routes statements with, so a migrated owner's
vault follows their rows automatically. Entries for the global vault
(``owner is None``) live on shard 0.

The facade subclasses :class:`~repro.vault.base.VaultStore` and
implements only the underscore primitives; stats accounting, filtering
and expiry come from the base class. Inner stores are driven through
*their* underscore primitives (under the facade's mutex) so vault
traffic is counted once, at the facade.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.errors import ShardError
from repro.vault.base import GLOBAL_OWNER, VaultStore
from repro.vault.entry import VaultEntry
from repro.shard.router import ShardMap

__all__ = ["ShardedVault"]


class ShardedVault(VaultStore):
    """Owner-hash routed facade over N per-shard vault stores."""

    def __init__(self, stores: list[VaultStore], shard_map: ShardMap) -> None:
        super().__init__()
        if not stores:
            raise ShardError("a sharded vault needs at least one store")
        if shard_map.n_shards != len(stores):
            raise ShardError(
                f"shard map is for {shard_map.n_shards} shard(s), "
                f"got {len(stores)} store(s)"
            )
        self.stores = list(stores)
        self.map = shard_map

    def _store_for(self, owner: Any) -> VaultStore:
        if owner is GLOBAL_OWNER:
            return self.stores[0]
        return self.stores[self.map.shard_of(owner)]

    # -- primitives (routed) -----------------------------------------------------

    def _put(self, entry: VaultEntry) -> None:
        self._store_for(entry.owner)._put(entry)

    def _put_many(self, entries: list[VaultEntry]) -> None:
        groups: dict[int, list[VaultEntry]] = {}
        for entry in entries:
            if entry.owner is GLOBAL_OWNER:
                index = 0
            else:
                index = self.map.shard_of(entry.owner)
            groups.setdefault(index, []).append(entry)
        for index, group in groups.items():
            self.stores[index]._put_many(group)

    def _replace(self, entry: VaultEntry) -> None:
        self._store_for(entry.owner)._replace(entry)

    def _delete(self, owner: Any, entry_ids: Iterable[int]) -> int:
        return self._store_for(owner)._delete(owner, entry_ids)

    def _entries(self, owner: Any) -> list[VaultEntry]:
        return self._store_for(owner)._entries(owner)

    def owners(self) -> list[Any]:
        seen: set[Any] = set()
        out: list[Any] = []
        for store in self.stores:
            for owner in store.owners():
                if owner not in seen:
                    seen.add(owner)
                    out.append(owner)
        return out

    def note_disguise(self, disguise_id: int, user_invoked: bool) -> None:
        for store in self.stores:
            store.note_disguise(disguise_id, user_invoked)

    def register_metrics(self, registry: Any, prefix: str = "vault") -> None:
        super().register_metrics(registry, prefix)
        registry.gauge(f"{prefix}.shards", lambda: len(self.stores))

    # -- migration support -------------------------------------------------------

    def entries_at(self, shard_index: int, owner: Any) -> list[VaultEntry]:
        """*owner*'s entries as physically stored on one shard (migration
        bookkeeping — routed reads should use ``entries_for``)."""
        with self._vault_mu:
            return list(self.stores[shard_index]._entries(owner))

    def move_owner(self, owner: Any, to_shard: int) -> int:
        """Physically move *owner*'s entries onto *to_shard*.

        Called by :func:`repro.shard.rebalance.migrate_owner` **before**
        the shard map flips, so sources are found by probing every store.
        Returns the number of entries moved. Idempotent: entries already
        at the target stay put.
        """
        moved = 0
        with self._vault_mu:
            for index, store in enumerate(self.stores):
                if index == to_shard:
                    continue
                entries = store._entries(owner)
                if not entries:
                    continue
                self.stores[to_shard]._put_many(sorted(entries, key=lambda e: e.seq))
                store._delete(owner, [entry.entry_id for entry in entries])
                moved += len(entries)
        return moved
