"""Parallel disguise execution across shards.

Owner-rooted disguises are the payoff of owner-hash placement: a spec
whose footprint is anchored to ``$UID`` touches exactly one shard, so its
lock footprint is shard-local (``s{home}/<table>`` names) and its
durability cost is one group-commit barrier on that shard's WAL. K
service workers applying disguises for K different owners on different
shards never share a lock and never share an fsync queue — independent
owners scale out instead of serializing on one log.

Pieces:

* :class:`ShardGroupWal` — the redo hook a :class:`ShardedDatabase`
  accepts: one :class:`~repro.storage.wal.WriteAheadLog` per shard, with
  fan-out ``defer_sync``, group-commit markers that make multi-shard
  transactions atomic at replay (see :func:`replay_shard_logs`), and a
  ``commit_barrier()`` that makes every log's appended frontier durable
  (a log with nothing pending returns immediately).
* :class:`ShardedWorkerPool` — the executor subclass that computes a
  job's home shard from its uid, prelocks the footprint *on that shard
  only*, and runs the job under :meth:`ShardedDatabase.routing_bias` so
  rows the disguise creates (placeholder users) land on the shard whose
  locks the job already holds.
* :class:`ShardedDisguiseService` — :class:`DisguiseService` with the
  sharded pool substituted; everything else (queue, lock manager,
  metrics, drain/shutdown) is inherited unchanged.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.errors import DisguiseError, ShardError
from repro.service.executor import JOB_APPLY, JOB_REVEAL, WorkerPool
from repro.service.locks import MODE_X, is_system_table
from repro.service.queue import Job
from repro.service.server import DisguiseService
from repro.shard.engine import ShardedDatabase, shard_lock_name
from repro.shard.router import (
    DIRECT,
    GLOBAL,
    ROOT,
    SYSTEM,
    Router,
    _conjuncts,
)
from repro.simtest.clock import resolve_clock
from repro.spec.disguise import USER_PARAM, DisguiseSpec
from repro.storage.predicate import ColumnRef, Comparison, Param

__all__ = [
    "ShardGroupWal",
    "ShardedWorkerPool",
    "ShardedDisguiseService",
    "replay_shard_logs",
    "spec_owner_rooted",
]


def _pins_anchor_to_uid(pred: Any, anchor: str) -> bool:
    """True if a top-level conjunct is ``anchor = $UID``."""
    for node in _conjuncts(pred):
        if not (isinstance(node, Comparison) and node.op == "="):
            continue
        left, right = node.left, node.right
        for col, other in ((left, right), (right, left)):
            if (
                isinstance(col, ColumnRef)
                and col.name == anchor
                and isinstance(other, Param)
                and other.name == USER_PARAM
            ):
                return True
    return False


def spec_owner_rooted(spec: DisguiseSpec, router: Router) -> bool:
    """Whether every statement of *spec* stays on the invoking owner's shard.

    True when each disguised table is owner-anchored (root or direct)
    and every transformation's predicate pins that table's **anchor
    column** to ``$UID`` — then applying for owner *u* only ever reads
    and writes rows placed on ``home(u)``, so the service can confine
    the job's lock footprint to that one shard. A single transformation
    predicated on some *other* user column (the GDPR spec's
    "decorrelate messages I authored", say) makes the spec cross-shard:
    those rows belong to other owners and live on other shards.
    """
    for table_disguise in spec.tables:
        placement = router.placement(table_disguise.table)
        if placement.kind not in (ROOT, DIRECT):
            return False
        anchor = placement.anchor
        for transformation in table_disguise.transformations:
            if not _pins_anchor_to_uid(transformation.pred, anchor):
                return False
    return True


class ShardGroupWal:
    """One write-ahead log per shard, presented as one redo hook group.

    A transaction that touched several shards appends one unit per
    shard — physically independent writes that a crash can tear apart
    (one shard's unit durable, another's lost), leaving a half-committed
    transaction no single log can detect. The group therefore stamps
    every multi-shard transaction with a marker record (``op: "txn"``,
    one id, the participant list) via :meth:`tag_commit`, and
    :func:`replay_shard_logs` replays only transactions whose units
    survived on *every* participant, scrubbing the rest.

    ``next_txn`` seeds the marker id counter; recovery passes
    ``max_txn + 1`` from the replayed logs so ids stay unique within a
    generation.
    """

    def __init__(self, wals: list[Any], clock: Any = None, next_txn: int = 1) -> None:
        if not wals:
            raise ShardError("a shard WAL group needs at least one log")
        self.wals = list(wals)
        self._clock = resolve_clock(clock)
        self._txn_mu = threading.Lock()
        self._next_txn = next_txn

    @property
    def defer_sync(self) -> bool:
        return all(getattr(wal, "defer_sync", False) for wal in self.wals)

    @defer_sync.setter
    def defer_sync(self, value: bool) -> None:
        # Thread-scoped on each inner WAL: only the calling thread's
        # commits defer; other committers keep their fsync policy.
        for wal in self.wals:
            wal.defer_sync = value

    def tag_commit(self) -> bool:
        """Stamp this thread's about-to-commit transaction with a marker.

        Called by :meth:`ShardedDatabase.commit` just before the shard
        commits append their units; returns whether a marker was
        stamped. Transactions confined to one shard need no marker — a
        single log's unit is already atomic.
        """
        participants = [
            index for index, wal in enumerate(self.wals) if wal.pending_records()
        ]
        if len(participants) <= 1:
            return False
        with self._txn_mu:
            txn_id = self._next_txn
            self._next_txn += 1
        marker = {"t": "stmt", "op": "txn", "id": txn_id, "shards": participants}
        for index in participants:
            self.wals[index].tag_transaction(marker)
        return True

    def commit_barrier(self) -> None:
        """Group-commit barrier: every appended unit on every log, durable.

        An ack must cover the acking thread's units on every log its
        transaction touched; syncing each log's full appended frontier
        is a superset of that and keeps group commit batching (one
        fsync retires everyone's pending units). A log whose frontier
        is already durable returns immediately.
        """
        self._clock.tick("shard.barrier")
        for wal in self.wals:
            wal.sync_appended()

    def sync(self) -> None:
        for wal in self.wals:
            wal.sync()

    def close(self) -> None:
        for wal in self.wals:
            wal.close()

    def truncate(self, generation: int | None = None) -> None:
        for wal in self.wals:
            wal.truncate(generation)

    def register_metrics(self, registry: Any, prefix: str = "wal") -> None:
        """Aggregate ``wal.*`` gauges over the per-shard logs."""

        def total(attr: str):
            return lambda: sum(getattr(wal, attr, 0) for wal in self.wals)

        registry.gauge(f"{prefix}.appends", total("commits_appended"))
        registry.gauge(f"{prefix}.fsyncs", total("syncs"))
        registry.gauge(f"{prefix}.bytes", total("bytes_written"))
        registry.gauge(f"{prefix}.logs", lambda: len(self.wals))


def _txn_marker(unit: list[dict[str, Any]]) -> dict[str, Any] | None:
    """The group-commit marker of a replay unit, if it carries one."""
    if unit and unit[0].get("op") == "txn":
        return unit[0]
    return None


def replay_shard_logs(
    shards: list[Any],
    wal_paths: list[Any],
    generation: int,
    *,
    scrub: bool = True,
) -> tuple[int, int]:
    """Replay per-shard WALs as a group; returns ``(replayed, next_txn)``.

    A multi-shard transaction appends one unit per participating shard,
    each stamped (by :meth:`ShardGroupWal.tag_commit`) with a marker
    naming the transaction id and the full participant set. A crash can
    make an arbitrary subset of those units durable; replaying each log
    independently would then resurrect half a transaction. Here a
    marked transaction is committed iff *every* shard in its
    participant list still holds its unit; units of torn transactions
    are dropped on the shards where they did survive.

    Dropping by presence (rather than cutting each log at the tear) is
    sound because :meth:`ShardedDatabase.commit` makes a multi-shard
    transaction durable on all participants *before releasing its
    locks* — a torn transaction never published its writes, so no
    surviving unit can depend on one.

    With ``scrub`` (the default), logs that lost units are atomically
    rewritten without them, so a later recovery of any single log
    cannot resurrect a dropped unit. Pass ``scrub=False`` for
    read-only checks against live logs.

    ``next_txn`` is one past the highest marker id seen anywhere
    (including dropped units) — seed :class:`ShardGroupWal` with it so
    fresh markers never collide with ids already in the logs.
    """
    from repro.storage.wal import WriteAheadLog, replay_into, rewrite_log

    if len(shards) != len(wal_paths):
        raise ShardError(
            f"{len(shards)} shards but {len(wal_paths)} WAL paths"
        )
    unit_lists: list[list[list[dict[str, Any]]]] = []
    live: list[bool] = []  # current-generation log present on disk?
    max_txn = 0
    present: dict[int, set[int]] = {}
    needed: dict[int, set[int]] = {}
    for index, path in enumerate(wal_paths):
        units: list[list[dict[str, Any]]] = []
        current = False
        if path is not None and path.exists():
            log_generation, read = WriteAheadLog.read_log(path)
            if log_generation == generation:
                units = read
                current = True
        for unit in units:
            marker = _txn_marker(unit)
            if marker is not None:
                txn_id = int(marker["id"])
                max_txn = max(max_txn, txn_id)
                present.setdefault(txn_id, set()).add(index)
                needed[txn_id] = set(int(s) for s in marker["shards"])
        unit_lists.append(units)
        live.append(current)

    torn = {
        txn_id for txn_id, shards_needed in needed.items()
        if not shards_needed <= present.get(txn_id, set())
    }

    replayed = 0
    for index, (shard, units) in enumerate(zip(shards, unit_lists)):
        survivors = [
            unit for unit in units
            if (marker := _txn_marker(unit)) is None
            or int(marker["id"]) not in torn
        ]
        if scrub and live[index] and len(survivors) < len(units):
            rewrite_log(wal_paths[index], generation, survivors)
        if survivors:
            replayed += replay_into(shard, survivors)
    return replayed, max_txn + 1


class ShardedWorkerPool(WorkerPool):
    """Worker pool whose prelocks and placement follow owner routing.

    Requires the pool's engines to sit over a :class:`ShardedDatabase`.
    Jobs with a uid prelock their footprint on the uid's home shard and
    run with a routing bias pinned there; global jobs (no uid, or a
    footprint containing global tables) prelock every shard's copy of
    the footprint, still in one globally sorted order.
    """

    def __init__(self, *args: Any, **kwargs: Any) -> None:
        super().__init__(*args, **kwargs)
        self._routing_tls = threading.local()

    def _sdb(self) -> ShardedDatabase:
        return self._engines[0].db

    def _job_routing(self, engine: Any, job: Job) -> tuple[int | None, bool]:
        """(home shard, owner-rooted?) for a job, best-effort.

        Lookup failures (unknown disguise id, unregistered spec) return
        the conservative ``(None, False)`` — the real dispatch raises
        the proper error afterwards.
        """
        payload = job.payload
        uid: Any = None
        spec = None
        try:
            if job.kind == JOB_APPLY:
                uid = payload.get("uid")
                spec = engine.spec(str(payload["spec"]))
            elif job.kind == JOB_REVEAL:
                record = engine.history.get(int(payload["did"]))
                uid = record.uid
                spec = engine.spec(record.name)
        except (DisguiseError, KeyError, ValueError):
            return None, False
        if uid is None or spec is None:
            return None, False
        router = self._sdb().router
        return router.home_shard(uid), spec_owner_rooted(spec, router)

    def _dispatch(self, engine: Any, job: Job, token: str) -> dict[str, Any]:
        home, rooted = self._job_routing(engine, job)
        # Thread-local: each worker's prelock must see its own job's home.
        self._routing_tls.home = home
        self._routing_tls.rooted = rooted
        sdb = self._sdb()
        try:
            if home is None:
                return super()._dispatch(engine, job, token)
            # Bias even cross-shard jobs: placeholder rows still land on
            # the shard most of the job's locks live on.
            with sdb.routing_bias(home):
                return super()._dispatch(engine, job, token)
        finally:
            self._routing_tls.home = None
            self._routing_tls.rooted = False

    def _prelock(self, token: str, tables: tuple[str, ...]) -> None:
        sdb = self._sdb()
        home = getattr(self._routing_tls, "home", None)
        rooted = getattr(self._routing_tls, "rooted", False)
        names: list[str] = []
        for table in tables:
            if is_system_table(table):
                continue  # latched per statement, never 2PL-prelocked
            kind = sdb.router.placement(table).kind
            if home is not None and rooted and kind not in (GLOBAL, SYSTEM):
                shard_indices: Any = (home,)
            else:
                # Cross-shard footprint: X-lock the table on every shard,
                # still in one globally sorted order — concurrent
                # cross-shard jobs serialize up front instead of
                # deadlocking in the middle.
                shard_indices = range(sdb.n_shards)
            names.extend(shard_lock_name(i, table) for i in shard_indices)
        for name in sorted(names):
            self.hook.manager.acquire(
                token, name, MODE_X, timeout=self.hook.timeout
            )


class ShardedDisguiseService(DisguiseService):
    """The disguise service over a sharded engine.

    Construct with a :class:`~repro.core.engine.Disguiser` whose ``db``
    is a :class:`ShardedDatabase` and (optionally) a
    :class:`ShardGroupWal` as ``wal``. Lock names are shard-qualified by
    the database's lock-hook adapter, so the inherited lock manager,
    deadlock detector, and metrics work unchanged.
    """

    _pool_class = ShardedWorkerPool

    def __init__(self, engine: Any, queue_path: Any, **kwargs: Any) -> None:
        if not isinstance(engine.db, ShardedDatabase):
            raise ShardError(
                "ShardedDisguiseService needs an engine over a ShardedDatabase"
            )
        super().__init__(engine, queue_path, **kwargs)
