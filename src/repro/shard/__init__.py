"""Owner-hash sharded engine (paper §6 scale-out direction).

Co-locates each owner's FK-ownership subtree — rows, vault entries, and
WAL traffic — on one of N shards, behind the unchanged ``Database``
statement API. See :mod:`repro.shard.router` for placement,
:mod:`repro.shard.engine` for the facade, :mod:`repro.shard.apply` for
parallel disguise execution, and :mod:`repro.shard.rebalance` for owner
migration.
"""

from repro.shard.apply import (
    ShardedDisguiseService,
    ShardedWorkerPool,
    ShardGroupWal,
    replay_shard_logs,
)
from repro.shard.engine import (
    ShardedDatabase,
    ShardedTableView,
    collapse,
    shard_database,
    shard_lock_name,
)
from repro.shard.rebalance import migrate_owner, owner_rows, recover_migration
from repro.shard.router import (
    DIRECT,
    GLOBAL,
    INDIRECT,
    ROOT,
    SYSTEM,
    OwnershipAnalyzer,
    Router,
    ShardMap,
    TablePlacement,
    owner_shard,
    owner_token,
)
from repro.shard.vault import ShardedVault

__all__ = [
    "DIRECT",
    "GLOBAL",
    "INDIRECT",
    "ROOT",
    "SYSTEM",
    "OwnershipAnalyzer",
    "Router",
    "ShardGroupWal",
    "ShardMap",
    "ShardedDatabase",
    "ShardedDisguiseService",
    "ShardedTableView",
    "ShardedVault",
    "ShardedWorkerPool",
    "TablePlacement",
    "collapse",
    "migrate_owner",
    "owner_rows",
    "owner_shard",
    "owner_token",
    "recover_migration",
    "replay_shard_logs",
    "shard_database",
    "shard_lock_name",
]
