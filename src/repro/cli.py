"""Command-line disguising tool (paper Figure 1).

"Developers provide disguise specifications to an external disguising
tool, which computes the necessary database changes and applies them to
the application's database backend." This module is that external tool for
snapshot-backed databases: it loads the application database from a JSON
snapshot, keeps vaults in a directory (:class:`~repro.vault.FileVault`),
applies or reveals disguises, and writes the snapshot back.

Usage::

    python -m repro.cli apply   --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --uid 19
    python -m repro.cli apply   --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --uid 19 --wal
    python -m repro.cli reveal  --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --did 1
    python -m repro.cli explain --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --uid 19
    python -m repro.cli history --db app.jsonl
    python -m repro.cli vault   --vault-dir vaults --owner 19
    python -m repro.cli check   --db app.jsonl
    python -m repro.cli checkpoint --db app.jsonl
    python -m repro.cli submit  --db app.jsonl apply --spec-name scrub --uid 19
    python -m repro.cli submit  --db app.jsonl reveal --did 1
    python -m repro.cli jobs    --db app.jsonl
    python -m repro.cli serve   --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --workers 4 --wal

Without ``--wal`` every write command rewrites the whole snapshot —
O(database) per invocation. With ``--wal`` the command appends the
disguise's changes to ``<db>.wal`` instead (O(changes); ``--fsync``
selects the durability/throughput trade-off) and the snapshot is only
rewritten when ``checkpoint`` folds the log back in. Every command reads
through a pending WAL, so the two modes interoperate: a non-WAL write
performs an implicit checkpoint.

``submit`` appends a request to the durable job queue (``<db>.jobs``)
without touching the database; ``serve`` starts the concurrent disguise
service (:mod:`repro.service`) over the snapshot, drains the queue with
``--workers`` worker threads under two-phase table locking, prints a
metrics report, and exits; ``jobs`` lists the queue. Apply submissions
name a spec by its registered name — resolution happens when ``serve``
runs with that spec's ``--spec`` document, and an unresolvable job
retries and dead-letters like any other failure.

Exit status: 0 on success, 1 on a disguise/storage error, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.core.engine import Disguiser
from repro.core.history import HISTORY_TABLE
from repro.errors import ReproError
from repro.service.executor import JOB_APPLY, JOB_EXPIRE, JOB_REVEAL
from repro.service.queue import JOB_STATES, JobQueue
from repro.service.server import DisguiseService, default_queue_path
from repro.spec.parser import spec_from_json
from repro.storage.persist import (
    load_database,
    read_snapshot_generation,
    save_database_atomic,
)
from repro.storage.wal import (
    FSYNC_POLICIES,
    WalDatabase,
    default_wal_path,
    open_in_place,
    recover_database,
)
from repro.vault.file_vault import FileVault

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Data disguising tool: apply/reveal privacy transformations "
        "on a snapshot-backed database.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_db(p):
        p.add_argument("--db", required=True, help="application database snapshot (JSON lines)")

    def add_wal(p):
        p.add_argument(
            "--wal",
            action="store_true",
            help="open the database in place: append changes to <db>.wal "
            "(O(changes)) instead of rewriting the snapshot (O(database))",
        )
        p.add_argument(
            "--fsync",
            choices=FSYNC_POLICIES,
            default="batch",
            help="WAL fsync policy: 'always' never loses an acked commit, "
            "'batch' groups syncs, 'never' leaves it to the OS (default: batch)",
        )

    def add_vault(p):
        p.add_argument("--vault-dir", required=True, help="vault directory (one file per user)")

    def add_specs(p):
        p.add_argument(
            "--spec",
            action="append",
            required=True,
            help="disguise spec JSON document (repeatable; all are registered)",
        )

    p_apply = sub.add_parser("apply", help="apply a disguise")
    add_db(p_apply)
    add_vault(p_apply)
    add_specs(p_apply)
    p_apply.add_argument("--name", help="disguise to apply (default: first --spec)")
    p_apply.add_argument("--uid", type=int, help="user id for $UID disguises")
    p_apply.add_argument("--irreversible", action="store_true", help="write no vault entries")
    p_apply.add_argument("--no-compose", action="store_true", help="disable vault recorrelation")
    p_apply.add_argument("--no-optimize", action="store_true", help="disable the redundancy optimizer")
    p_apply.add_argument("--check-integrity", action="store_true")
    add_wal(p_apply)

    p_reveal = sub.add_parser("reveal", help="reverse a previously applied disguise")
    add_db(p_reveal)
    add_vault(p_reveal)
    add_specs(p_reveal)
    p_reveal.add_argument("--did", type=int, required=True, help="disguise id to reveal")
    p_reveal.add_argument("--check-integrity", action="store_true")
    add_wal(p_reveal)

    p_explain = sub.add_parser("explain", help="dry-run: what would apply do?")
    add_db(p_explain)
    add_vault(p_explain)
    add_specs(p_explain)
    p_explain.add_argument("--name", help="disguise to explain (default: first --spec)")
    p_explain.add_argument("--uid", type=int)
    p_explain.add_argument("--no-optimize", action="store_true")

    p_history = sub.add_parser("history", help="show the disguise history log")
    add_db(p_history)

    p_vault = sub.add_parser("vault", help="inspect a user's vault")
    add_vault(p_vault)
    p_vault.add_argument("--owner", type=int, help="user id (omit for the global vault)")

    p_check = sub.add_parser("check", help="referential-integrity check")
    add_db(p_check)

    p_checkpoint = sub.add_parser(
        "checkpoint",
        help="fold <db>.wal back into the snapshot and truncate the log",
    )
    add_db(p_checkpoint)

    p_audit = sub.add_parser(
        "audit", help="DELF-style erasure audit: traces of a user after disguising"
    )
    add_db(p_audit)
    p_audit.add_argument("--user-table", required=True, help="the user/account table")
    p_audit.add_argument("--uid", type=int, required=True)
    p_audit.add_argument(
        "--identifier",
        action="append",
        default=[],
        help="known identifier string to grep for (repeatable)",
    )

    p_pii = sub.add_parser("scan-pii", help="sweep all text columns for PII-shaped values")
    add_db(p_pii)

    def add_queue(p):
        p.add_argument("--queue", help="job queue journal (default: <db>.jobs)")

    p_serve = sub.add_parser(
        "serve",
        help="start the concurrent disguise service and drain the job queue",
    )
    add_db(p_serve)
    add_vault(p_serve)
    add_specs(p_serve)
    add_queue(p_serve)
    p_serve.add_argument(
        "--workers", type=int, default=4, help="worker threads (default: 4)"
    )
    p_serve.add_argument(
        "--lock-timeout",
        type=float,
        default=10.0,
        help="seconds a job waits for a table lock before failing (default: 10)",
    )
    p_serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts before a job dead-letters (default: 3)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        help="give up draining after this many seconds (default: wait forever)",
    )
    add_wal(p_serve)

    p_submit = sub.add_parser(
        "submit", help="append a job to the durable queue (no workers run)"
    )
    add_db(p_submit)
    add_queue(p_submit)
    sub_submit = p_submit.add_subparsers(dest="kind", required=True)
    ps_apply = sub_submit.add_parser("apply", help="queue a disguise application")
    ps_apply.add_argument(
        "--spec-name", required=True, help="registered name of the disguise spec"
    )
    ps_apply.add_argument("--uid", type=int, help="user id for $UID disguises")
    ps_apply.add_argument("--irreversible", action="store_true")
    ps_reveal = sub_submit.add_parser("reveal", help="queue a disguise reversal")
    ps_reveal.add_argument("--did", type=int, required=True, help="disguise id")
    ps_expire = sub_submit.add_parser("expire", help="queue a vault expiration")
    ps_expire.add_argument(
        "--epoch", type=int, required=True, help="drop vault entries older than this"
    )

    p_jobs = sub.add_parser("jobs", help="list the job queue")
    add_db(p_jobs)
    add_queue(p_jobs)
    p_jobs.add_argument(
        "--state",
        action="append",
        choices=JOB_STATES,
        help="only these states (repeatable; default: all)",
    )

    p_metrics = sub.add_parser(
        "metrics",
        help="print the database's metrics registry (dotted-name schema)",
    )
    add_db(p_metrics)
    p_metrics.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p_metrics.add_argument(
        "--legacy",
        action="store_true",
        help="also include the deprecated pre-registry key names",
    )

    p_trace = sub.add_parser(
        "trace",
        help="dry-run a disguise with trace spans: apply against throwaway "
        "WAL/vault copies, print the span tree, persist nothing",
    )
    add_db(p_trace)
    add_specs(p_trace)
    p_trace.add_argument("--name", help="disguise to trace (default: first --spec)")
    p_trace.add_argument("--uid", type=int, help="user id for $UID disguises")
    p_trace.add_argument(
        "--json", action="store_true", help="emit spans as JSONL instead of a tree"
    )
    p_trace.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="slow-op budget in milliseconds; over-budget statements and "
        "disguises are reported with their captured span trees",
    )

    return parser


def _read_db(args, verify: bool = True):
    """Load the snapshot for a read-only command, folding in a pending WAL."""
    if default_wal_path(args.db).exists():
        return recover_database(args.db, verify=verify)
    return load_database(args.db, verify=verify)


def _open_for_write(args) -> tuple[Any, WalDatabase | None]:
    """The database for a write command, plus the WAL handle when ``--wal``."""
    if getattr(args, "wal", False):
        handle = open_in_place(args.db, fsync=args.fsync)
        return handle.db, handle
    return _read_db(args), None


def _finish_write(args, db, handle: WalDatabase | None) -> None:
    """Persist a write command's result: WAL close, or snapshot rewrite.

    A non-WAL write on a database with a pending log is an implicit
    checkpoint, with the same crash discipline as
    :meth:`WalDatabase.checkpoint`: the snapshot is installed atomically
    (temp file + fsync + rename) with its generation bumped past the
    pending log's, so the old snapshot survives a crash mid-write and a
    crash before the unlink leaves a log that recovery recognizes as
    already folded in rather than replaying it over the new snapshot.
    """
    if handle is not None:
        handle.close()
        return
    save_database_atomic(db, args.db, generation=read_snapshot_generation(args.db) + 1)
    default_wal_path(args.db).unlink(missing_ok=True)


def _engine(args) -> tuple[Disguiser, WalDatabase | None]:
    db, handle = _open_for_write(args)
    vault = FileVault(args.vault_dir)
    engine = Disguiser(db, vault=vault)
    for spec_path in getattr(args, "spec", None) or []:
        document = Path(spec_path).read_text(encoding="utf-8")
        engine.register(spec_from_json(document))
    return engine, handle


def _spec_name(engine: Disguiser, args) -> str:
    if getattr(args, "name", None):
        return args.name
    first = Path(args.spec[0]).read_text(encoding="utf-8")
    return spec_from_json(first).name


def cmd_apply(args) -> int:
    engine, handle = _engine(args)
    try:
        name = _spec_name(engine, args)
        report = engine.apply(
            name,
            uid=args.uid,
            reversible=not args.irreversible,
            compose=not args.no_compose,
            optimize=not args.no_optimize,
            check_integrity=args.check_integrity,
        )
    except BaseException:
        if handle is not None:
            handle.close()
        raise
    _finish_write(args, engine.db, handle)
    print(report.summary())
    print(f"disguise id: {report.disguise_id}")
    return 0


def cmd_reveal(args) -> int:
    engine, handle = _engine(args)
    try:
        report = engine.reveal(args.did, check_integrity=args.check_integrity)
    except BaseException:
        if handle is not None:
            handle.close()
        raise
    _finish_write(args, engine.db, handle)
    print(report.summary())
    return 0


def cmd_explain(args) -> int:
    engine, _handle = _engine(args)
    name = _spec_name(engine, args)
    plan = engine.explain(name, uid=args.uid, optimize=not args.no_optimize)
    print(plan.describe())
    return 0 if plan.is_applicable else 1


def cmd_history(args) -> int:
    db = _read_db(args)
    if not db.has_table(HISTORY_TABLE):
        print("no disguise history")
        return 0
    rows = sorted(db.select(HISTORY_TABLE), key=lambda r: r["did"])
    if not rows:
        print("no disguises applied")
        return 0
    print(f"{'did':>4}  {'name':24}  {'uid':>6}  {'active':6}  {'reversible':10}")
    for row in rows:
        print(
            f"{row['did']:>4}  {row['name']:24}  {str(row['uid'] or '-'):>6}  "
            f"{'yes' if row['active'] else 'no':6}  "
            f"{'yes' if row['reversible'] else 'no':10}"
        )
    return 0


def cmd_vault(args) -> int:
    vault = FileVault(args.vault_dir)
    owner = args.owner
    entries = vault.entries_for(owner)
    label = f"user {owner}" if owner is not None else "global vault"
    print(f"{len(entries)} entr(y/ies) for {label}")
    for entry in entries:
        print(
            json.dumps(
                {
                    "entry_id": entry.entry_id,
                    "disguise_id": entry.disguise_id,
                    "seq": entry.seq,
                    "table": entry.table,
                    "pk": entry.pk,
                    "op": entry.op,
                }
            )
        )
    return 0


def cmd_check(args) -> int:
    db = _read_db(args, verify=False)
    problems = db.check_integrity()
    if problems:
        for problem in problems:
            print(f"VIOLATION: {problem}")
        return 1
    print(f"ok: {db.total_rows()} rows, no dangling references")
    return 0


def cmd_audit(args) -> int:
    from repro.core.audit import audit_user_erasure

    db = _read_db(args, verify=False)
    findings = audit_user_erasure(
        db, args.user_table, args.uid, identifiers=args.identifier
    )
    if findings:
        for finding in findings:
            print(f"LEAK: {finding}")
        return 1
    print(f"clean: no traces of {args.user_table}.{args.uid}")
    return 0


def cmd_scan_pii(args) -> int:
    from repro.core.audit import scan_for_pii

    db = _read_db(args, verify=False)
    findings = scan_for_pii(db)
    if findings:
        for finding in findings:
            print(f"PII: {finding}")
        return 1
    print("clean: no PII-shaped values found")
    return 0


def _queue_path(args) -> Path:
    return Path(args.queue) if args.queue else default_queue_path(args.db)


def cmd_serve(args) -> int:
    engine, handle = _engine(args)
    service = DisguiseService(
        engine,
        _queue_path(args),
        workers=args.workers,
        wal=handle.wal if handle is not None else None,
        lock_timeout=args.lock_timeout,
        max_attempts=args.max_attempts,
    )
    try:
        with service:
            drained = service.drain(timeout=args.drain_timeout)
    except BaseException:
        if handle is not None:
            handle.close()
        raise
    _finish_write(args, engine.db, handle)
    # Both schemas in one report: new dotted registry names plus the
    # legacy keys old consumers parse (MetricsView.legacy merges them).
    print(json.dumps(service.metrics().legacy(), indent=2, sort_keys=True))
    if not drained:
        print("warning: drain timed out with jobs still queued", file=sys.stderr)
        return 1
    dead = service.queue.counts()["dead"]
    if dead:
        print(f"warning: {dead} job(s) dead-lettered", file=sys.stderr)
        return 1
    return 0


def cmd_submit(args) -> int:
    queue = JobQueue(_queue_path(args))
    try:
        if args.kind == "apply":
            job = queue.submit(
                JOB_APPLY,
                {
                    "spec": args.spec_name,
                    "uid": args.uid,
                    "reversible": not args.irreversible,
                },
            )
        elif args.kind == "reveal":
            job = queue.submit(JOB_REVEAL, {"did": args.did})
        else:
            job = queue.submit(JOB_EXPIRE, {"epoch": args.epoch})
    finally:
        queue.close()
    print(f"queued job {job.job_id}: {args.kind}")
    return 0


def cmd_jobs(args) -> int:
    path = _queue_path(args)
    if not path.exists():
        print("no job queue")
        return 0
    queue = JobQueue(path)
    try:
        jobs = queue.jobs(states=args.state)
    finally:
        queue.close()
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(json.dumps(job.describe(), sort_keys=True))
    return 0


def cmd_metrics(args) -> int:
    db = _read_db(args, verify=False)
    view = db.metrics()
    data = view.legacy() if args.legacy else dict(view)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True, default=str))
        return 0
    width = max((len(name) for name in data), default=0)
    for name in sorted(data):
        print(f"{name:<{width}}  {data[name]}")
    return 0


def cmd_trace(args) -> int:
    import tempfile

    from repro.obs import disable_tracing, enable_tracing, render_spans, spans_to_jsonl
    from repro.storage.wal import WriteAheadLog

    db = _read_db(args)
    threshold = args.slow_ms / 1000.0 if args.slow_ms is not None else None
    with tempfile.TemporaryDirectory() as tmp:
        # Every layer the apply would touch is attached for real — WAL with
        # per-commit fsync, file vault — but against throwaway files, and
        # the in-memory database is never written back: the span tree shows
        # the true shape and cost of the disguise without persisting it.
        wal = WriteAheadLog(Path(tmp) / "trace.wal", fsync="always")
        db.set_redo_hook(wal)
        engine = Disguiser(db, vault=FileVault(Path(tmp) / "vaults"))
        for spec_path in args.spec:
            document = Path(spec_path).read_text(encoding="utf-8")
            engine.register(spec_from_json(document))
        name = _spec_name(engine, args)
        tracer = enable_tracing(threshold)
        try:
            report = engine.apply(name, uid=args.uid)
        finally:
            disable_tracing()
            db.set_redo_hook(None)
            wal.close()
        roots = tracer.take()
        slow_ops = list(tracer.slow_ops)
    if args.json:
        print(spans_to_jsonl(roots))
    else:
        print(render_spans(roots))
        print(
            f"(dry run: disguise {report.disguise_id} traced, nothing persisted)"
        )
    for slow in slow_ops:
        print(slow.render(), file=sys.stderr)
    return 0


def cmd_checkpoint(args) -> int:
    wal_path = default_wal_path(args.db)
    pending = wal_path.stat().st_size if wal_path.exists() else 0
    with open_in_place(args.db) as handle:
        handle.checkpoint()
        rows = handle.db.total_rows()
    print(f"checkpointed {args.db}: {rows} rows, folded {pending} WAL byte(s)")
    return 0


_COMMANDS = {
    "apply": cmd_apply,
    "reveal": cmd_reveal,
    "explain": cmd_explain,
    "history": cmd_history,
    "vault": cmd_vault,
    "check": cmd_check,
    "checkpoint": cmd_checkpoint,
    "audit": cmd_audit,
    "scan-pii": cmd_scan_pii,
    "serve": cmd_serve,
    "submit": cmd_submit,
    "jobs": cmd_jobs,
    "metrics": cmd_metrics,
    "trace": cmd_trace,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
