"""Command-line disguising tool (paper Figure 1).

"Developers provide disguise specifications to an external disguising
tool, which computes the necessary database changes and applies them to
the application's database backend." This module is that external tool for
snapshot-backed databases: it loads the application database from a JSON
snapshot, keeps vaults in a directory (:class:`~repro.vault.FileVault`),
applies or reveals disguises, and writes the snapshot back.

Usage::

    python -m repro.cli apply   --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --uid 19
    python -m repro.cli apply   --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --uid 19 --wal
    python -m repro.cli reveal  --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --did 1
    python -m repro.cli explain --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --uid 19
    python -m repro.cli history --db app.jsonl
    python -m repro.cli vault   --vault-dir vaults --owner 19
    python -m repro.cli check   --db app.jsonl
    python -m repro.cli checkpoint --db app.jsonl
    python -m repro.cli submit  --db app.jsonl apply --spec-name scrub --uid 19
    python -m repro.cli submit  --db app.jsonl reveal --did 1
    python -m repro.cli jobs    --db app.jsonl
    python -m repro.cli serve   --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --workers 4 --wal
    python -m repro.cli serve   --db app.jsonl --vault-dir vaults \
                                --spec scrub.json --workers 4 --shards 4
    python -m repro.cli shards  --db app.jsonl
    python -m repro.cli shards  --db app.jsonl --owner 19 --migrate-to 2 \
                                --vault-dir vaults

Without ``--wal`` every write command rewrites the whole snapshot —
O(database) per invocation. With ``--wal`` the command appends the
disguise's changes to ``<db>.wal`` instead (O(changes); ``--fsync``
selects the durability/throughput trade-off) and the snapshot is only
rewritten when ``checkpoint`` folds the log back in. Every command reads
through a pending WAL, so the two modes interoperate: a non-WAL write
performs an implicit checkpoint.

``submit`` appends a request to the durable job queue (``<db>.jobs``)
without touching the database; ``serve`` starts the concurrent disguise
service (:mod:`repro.service`) over the snapshot, drains the queue with
``--workers`` worker threads under two-phase table locking, prints a
metrics report, and exits; ``jobs`` lists the queue. Apply submissions
name a spec by its registered name — resolution happens when ``serve``
runs with that spec's ``--spec`` document, and an unresolvable job
retries and dead-letters like any other failure.

``serve --shards N`` partitions the snapshot into N owner-hash shards
(:mod:`repro.shard`) for the run: each shard journals to its own WAL
(``<db>.s<i>.wal``) and keeps its own vault (``<vault-dir>/shard-<i>``),
owner-rooted jobs lock and fsync only their owner's home shard, and the
placement map persists at ``<db>.shardmap``. Shutdown folds the shards
back into the snapshot (an implicit checkpoint); a crash mid-run
recovers by re-partitioning the snapshot — placement is deterministic —
and replaying each shard's log. ``shards`` inspects the layout
(``--owner`` for one owner's placement) or, with ``--migrate-to``,
moves an owner's subtree between shards offline under the journaled
migration protocol of :mod:`repro.shard.rebalance`.

Exit status: 0 on success, 1 on a disguise/storage error, 2 on bad usage.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any

from repro.core.engine import Disguiser
from repro.core.history import HISTORY_TABLE
from repro.errors import ReproError
from repro.service.executor import JOB_APPLY, JOB_EXPIRE, JOB_REVEAL
from repro.service.queue import JOB_STATES, JobQueue
from repro.service.server import DisguiseService, default_queue_path
from repro.spec.parser import spec_from_json
from repro.storage.persist import (
    load_database,
    read_snapshot_generation,
    save_database_atomic,
)
from repro.storage.wal import (
    FSYNC_POLICIES,
    WalDatabase,
    default_wal_path,
    open_in_place,
    recover_database,
)
from repro.vault.file_vault import FileVault

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.cli",
        description="Data disguising tool: apply/reveal privacy transformations "
        "on a snapshot-backed database.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_db(p):
        p.add_argument("--db", required=True, help="application database snapshot (JSON lines)")

    def add_wal(p):
        p.add_argument(
            "--wal",
            action="store_true",
            help="open the database in place: append changes to <db>.wal "
            "(O(changes)) instead of rewriting the snapshot (O(database))",
        )
        p.add_argument(
            "--fsync",
            choices=FSYNC_POLICIES,
            default="batch",
            help="WAL fsync policy: 'always' never loses an acked commit, "
            "'batch' groups syncs, 'never' leaves it to the OS (default: batch)",
        )

    def add_vault(p):
        p.add_argument("--vault-dir", required=True, help="vault directory (one file per user)")

    def add_specs(p):
        p.add_argument(
            "--spec",
            action="append",
            required=True,
            help="disguise spec JSON document (repeatable; all are registered)",
        )

    p_apply = sub.add_parser("apply", help="apply a disguise")
    add_db(p_apply)
    add_vault(p_apply)
    add_specs(p_apply)
    p_apply.add_argument("--name", help="disguise to apply (default: first --spec)")
    p_apply.add_argument("--uid", type=int, help="user id for $UID disguises")
    p_apply.add_argument("--irreversible", action="store_true", help="write no vault entries")
    p_apply.add_argument("--no-compose", action="store_true", help="disable vault recorrelation")
    p_apply.add_argument("--no-optimize", action="store_true", help="disable the redundancy optimizer")
    p_apply.add_argument("--check-integrity", action="store_true")
    add_wal(p_apply)

    p_reveal = sub.add_parser("reveal", help="reverse a previously applied disguise")
    add_db(p_reveal)
    add_vault(p_reveal)
    add_specs(p_reveal)
    p_reveal.add_argument("--did", type=int, required=True, help="disguise id to reveal")
    p_reveal.add_argument("--check-integrity", action="store_true")
    add_wal(p_reveal)

    p_explain = sub.add_parser("explain", help="dry-run: what would apply do?")
    add_db(p_explain)
    add_vault(p_explain)
    add_specs(p_explain)
    p_explain.add_argument("--name", help="disguise to explain (default: first --spec)")
    p_explain.add_argument("--uid", type=int)
    p_explain.add_argument("--no-optimize", action="store_true")

    p_history = sub.add_parser("history", help="show the disguise history log")
    add_db(p_history)

    p_vault = sub.add_parser("vault", help="inspect a user's vault")
    add_vault(p_vault)
    p_vault.add_argument("--owner", type=int, help="user id (omit for the global vault)")

    p_check = sub.add_parser("check", help="referential-integrity check")
    add_db(p_check)

    p_checkpoint = sub.add_parser(
        "checkpoint",
        help="fold <db>.wal back into the snapshot and truncate the log",
    )
    add_db(p_checkpoint)

    p_audit = sub.add_parser(
        "audit", help="DELF-style erasure audit: traces of a user after disguising"
    )
    add_db(p_audit)
    p_audit.add_argument("--user-table", required=True, help="the user/account table")
    p_audit.add_argument("--uid", type=int, required=True)
    p_audit.add_argument(
        "--identifier",
        action="append",
        default=[],
        help="known identifier string to grep for (repeatable)",
    )

    p_pii = sub.add_parser("scan-pii", help="sweep all text columns for PII-shaped values")
    add_db(p_pii)

    def add_queue(p):
        p.add_argument("--queue", help="job queue journal (default: <db>.jobs)")

    p_serve = sub.add_parser(
        "serve",
        help="start the concurrent disguise service and drain the job queue",
    )
    add_db(p_serve)
    add_vault(p_serve)
    add_specs(p_serve)
    add_queue(p_serve)
    p_serve.add_argument(
        "--workers", type=int, default=4, help="worker threads (default: 4)"
    )
    p_serve.add_argument(
        "--lock-timeout",
        type=float,
        default=10.0,
        help="seconds a job waits for a table lock before failing (default: 10)",
    )
    p_serve.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts before a job dead-letters (default: 3)",
    )
    p_serve.add_argument(
        "--drain-timeout",
        type=float,
        default=None,
        help="give up draining after this many seconds (default: wait forever)",
    )
    p_serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the database into N owner-hash shards for the run: "
        "per-shard WALs, per-shard vaults, owner-rooted jobs confined to "
        "one shard (default: 1, unsharded)",
    )
    add_wal(p_serve)

    p_submit = sub.add_parser(
        "submit", help="append a job to the durable queue (no workers run)"
    )
    add_db(p_submit)
    add_queue(p_submit)
    sub_submit = p_submit.add_subparsers(dest="kind", required=True)
    ps_apply = sub_submit.add_parser("apply", help="queue a disguise application")
    ps_apply.add_argument(
        "--spec-name", required=True, help="registered name of the disguise spec"
    )
    ps_apply.add_argument("--uid", type=int, help="user id for $UID disguises")
    ps_apply.add_argument("--irreversible", action="store_true")
    ps_reveal = sub_submit.add_parser("reveal", help="queue a disguise reversal")
    ps_reveal.add_argument("--did", type=int, required=True, help="disguise id")
    ps_expire = sub_submit.add_parser("expire", help="queue a vault expiration")
    ps_expire.add_argument(
        "--epoch", type=int, required=True, help="drop vault entries older than this"
    )

    p_jobs = sub.add_parser("jobs", help="list the job queue")
    add_db(p_jobs)
    add_queue(p_jobs)
    p_jobs.add_argument(
        "--state",
        action="append",
        choices=JOB_STATES,
        help="only these states (repeatable; default: all)",
    )

    p_metrics = sub.add_parser(
        "metrics",
        help="print the database's metrics registry (dotted-name schema)",
    )
    add_db(p_metrics)
    p_metrics.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )
    p_metrics.add_argument(
        "--legacy",
        action="store_true",
        help="also include the deprecated pre-registry key names",
    )

    p_shards = sub.add_parser(
        "shards",
        help="inspect or rebalance the owner-hash shard layout",
    )
    add_db(p_shards)
    p_shards.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count (default: read from <db>.shardmap)",
    )
    p_shards.add_argument(
        "--owner", type=int, help="show (or migrate) this owner's placement"
    )
    p_shards.add_argument(
        "--migrate-to",
        type=int,
        default=None,
        help="offline rebalance: move --owner's subtree onto this shard, "
        "flip the shard map, and checkpoint the snapshot",
    )
    p_shards.add_argument(
        "--vault-dir",
        help="vault directory; the owner's vault entries migrate with the rows",
    )
    p_shards.add_argument(
        "--json", action="store_true", help="machine-readable JSON output"
    )

    p_trace = sub.add_parser(
        "trace",
        help="dry-run a disguise with trace spans: apply against throwaway "
        "WAL/vault copies, print the span tree, persist nothing",
    )
    add_db(p_trace)
    add_specs(p_trace)
    p_trace.add_argument("--name", help="disguise to trace (default: first --spec)")
    p_trace.add_argument("--uid", type=int, help="user id for $UID disguises")
    p_trace.add_argument(
        "--json", action="store_true", help="emit spans as JSONL instead of a tree"
    )
    p_trace.add_argument(
        "--slow-ms",
        type=float,
        default=None,
        help="slow-op budget in milliseconds; over-budget statements and "
        "disguises are reported with their captured span trees",
    )

    p_simtest = sub.add_parser(
        "simtest",
        help="deterministic simulation: run seeded randomized workloads on "
        "an in-memory crash-consistency substrate and check recovery "
        "invariants (same seed replays the same run, byte for byte)",
    )
    p_simtest.add_argument(
        "--seed", type=int, default=None, help="run this one seed"
    )
    p_simtest.add_argument(
        "--seeds",
        default=None,
        help="half-open seed range A:B for a sweep (e.g. 0:200)",
    )
    p_simtest.add_argument(
        "--steps", type=int, default=300, help="scheduler steps per run"
    )
    p_simtest.add_argument(
        "--shards",
        type=int,
        default=0,
        help="shard count (0 = monolithic WAL database)",
    )
    p_simtest.add_argument(
        "--workers", type=int, default=2, help="simulated service workers"
    )
    p_simtest.add_argument(
        "--app",
        choices=("lobsters", "hotcrp", "mixed"),
        default="mixed",
        help="workload spec family; 'mixed' alternates by seed parity",
    )
    p_simtest.add_argument(
        "--crashes",
        type=int,
        default=None,
        help="power cuts per run (default: the plan RNG decides)",
    )
    p_simtest.add_argument(
        "--fsync",
        choices=FSYNC_POLICIES,
        default="batch",
        help="WAL fsync policy under simulation (default: batch)",
    )
    p_simtest.add_argument(
        "--fault-keep-all",
        type=float,
        default=0.5,
        metavar="P",
        help="probability a crash keeps all un-fsynced bytes; 0.0 tears "
        "every crash-caught append (default: 0.5)",
    )
    p_simtest.add_argument(
        "--shrink",
        action="store_true",
        help="on failure, delta-debug the plan to a minimal reproduction "
        "and print its trace",
    )
    p_simtest.add_argument(
        "--trace", action="store_true", help="print the full schedule trace"
    )
    p_simtest.add_argument(
        "--trace-file",
        default=None,
        help="write the failing run's trace (shrunken when --shrink) to "
        "this path as JSON",
    )

    return parser


def _read_db(args, verify: bool = True):
    """Load the snapshot for a read-only command, folding in a pending WAL."""
    if default_wal_path(args.db).exists():
        return recover_database(args.db, verify=verify)
    return load_database(args.db, verify=verify)


def _open_for_write(args) -> tuple[Any, WalDatabase | None]:
    """The database for a write command, plus the WAL handle when ``--wal``."""
    if getattr(args, "wal", False):
        handle = open_in_place(args.db, fsync=args.fsync)
        return handle.db, handle
    return _read_db(args), None


def _finish_write(args, db, handle: WalDatabase | None) -> None:
    """Persist a write command's result: WAL close, or snapshot rewrite.

    A non-WAL write on a database with a pending log is an implicit
    checkpoint, with the same crash discipline as
    :meth:`WalDatabase.checkpoint`: the snapshot is installed atomically
    (temp file + fsync + rename) with its generation bumped past the
    pending log's, so the old snapshot survives a crash mid-write and a
    crash before the unlink leaves a log that recovery recognizes as
    already folded in rather than replaying it over the new snapshot.
    """
    if handle is not None:
        handle.close()
        return
    save_database_atomic(db, args.db, generation=read_snapshot_generation(args.db) + 1)
    default_wal_path(args.db).unlink(missing_ok=True)


def _engine(args) -> tuple[Disguiser, WalDatabase | None]:
    db, handle = _open_for_write(args)
    vault = FileVault(args.vault_dir)
    engine = Disguiser(db, vault=vault)
    for spec_path in getattr(args, "spec", None) or []:
        document = Path(spec_path).read_text(encoding="utf-8")
        engine.register(spec_from_json(document))
    return engine, handle


def _spec_name(engine: Disguiser, args) -> str:
    if getattr(args, "name", None):
        return args.name
    first = Path(args.spec[0]).read_text(encoding="utf-8")
    return spec_from_json(first).name


def cmd_apply(args) -> int:
    engine, handle = _engine(args)
    try:
        name = _spec_name(engine, args)
        report = engine.apply(
            name,
            uid=args.uid,
            reversible=not args.irreversible,
            compose=not args.no_compose,
            optimize=not args.no_optimize,
            check_integrity=args.check_integrity,
        )
    except BaseException:
        if handle is not None:
            handle.close()
        raise
    _finish_write(args, engine.db, handle)
    print(report.summary())
    print(f"disguise id: {report.disguise_id}")
    return 0


def cmd_reveal(args) -> int:
    engine, handle = _engine(args)
    try:
        report = engine.reveal(args.did, check_integrity=args.check_integrity)
    except BaseException:
        if handle is not None:
            handle.close()
        raise
    _finish_write(args, engine.db, handle)
    print(report.summary())
    return 0


def cmd_explain(args) -> int:
    engine, _handle = _engine(args)
    name = _spec_name(engine, args)
    plan = engine.explain(name, uid=args.uid, optimize=not args.no_optimize)
    print(plan.describe())
    return 0 if plan.is_applicable else 1


def cmd_history(args) -> int:
    db = _read_db(args)
    if not db.has_table(HISTORY_TABLE):
        print("no disguise history")
        return 0
    rows = sorted(db.select(HISTORY_TABLE), key=lambda r: r["did"])
    if not rows:
        print("no disguises applied")
        return 0
    print(f"{'did':>4}  {'name':24}  {'uid':>6}  {'active':6}  {'reversible':10}")
    for row in rows:
        print(
            f"{row['did']:>4}  {row['name']:24}  {str(row['uid'] or '-'):>6}  "
            f"{'yes' if row['active'] else 'no':6}  "
            f"{'yes' if row['reversible'] else 'no':10}"
        )
    return 0


def cmd_vault(args) -> int:
    vault = FileVault(args.vault_dir)
    owner = args.owner
    entries = vault.entries_for(owner)
    label = f"user {owner}" if owner is not None else "global vault"
    print(f"{len(entries)} entr(y/ies) for {label}")
    for entry in entries:
        print(
            json.dumps(
                {
                    "entry_id": entry.entry_id,
                    "disguise_id": entry.disguise_id,
                    "seq": entry.seq,
                    "table": entry.table,
                    "pk": entry.pk,
                    "op": entry.op,
                }
            )
        )
    return 0


def cmd_check(args) -> int:
    db = _read_db(args, verify=False)
    problems = db.check_integrity()
    if problems:
        for problem in problems:
            print(f"VIOLATION: {problem}")
        return 1
    print(f"ok: {db.total_rows()} rows, no dangling references")
    return 0


def cmd_audit(args) -> int:
    from repro.core.audit import audit_user_erasure

    db = _read_db(args, verify=False)
    findings = audit_user_erasure(
        db, args.user_table, args.uid, identifiers=args.identifier
    )
    if findings:
        for finding in findings:
            print(f"LEAK: {finding}")
        return 1
    print(f"clean: no traces of {args.user_table}.{args.uid}")
    return 0


def cmd_scan_pii(args) -> int:
    from repro.core.audit import scan_for_pii

    db = _read_db(args, verify=False)
    findings = scan_for_pii(db)
    if findings:
        for finding in findings:
            print(f"PII: {finding}")
        return 1
    print("clean: no PII-shaped values found")
    return 0


def _queue_path(args) -> Path:
    return Path(args.queue) if args.queue else default_queue_path(args.db)


def _shard_map_path(db_path: str | Path) -> Path:
    path = Path(db_path)
    return path.with_name(path.name + ".shardmap")


def _shard_wal_path(db_path: str | Path, index: int) -> Path:
    path = Path(db_path)
    return path.with_name(path.name + f".s{index}.wal")


def _open_sharded(args, n_shards: int):
    """Shard the snapshot and fold in any pending per-shard WALs.

    Partitioning is deterministic (sha256 owner tokens + the persisted
    shard map), so re-sharding the same snapshot reproduces the exact
    per-shard layout a crashed run journaled against — the shard WALs
    then replay as a group (multi-shard transactions all-or-nothing,
    torn ones scrubbed; see :func:`repro.shard.replay_shard_logs`).
    Stale logs (generation behind the snapshot's) were already folded in
    by a checkpoint and are skipped.
    """
    from repro.shard import replay_shard_logs, shard_database

    db = _read_db(args)
    generation = read_snapshot_generation(args.db)
    sdb = shard_database(db, n_shards, map_path=_shard_map_path(args.db))
    wal_paths = [_shard_wal_path(args.db, index) for index in range(n_shards)]
    replayed, next_txn = replay_shard_logs(sdb.shards, wal_paths, generation)
    if replayed == 0:
        # A fresh partition placed every non-overridden owner at its hash
        # home, so dirty flags carried over from the previous run (which
        # force owner-eq reads to scatter) no longer describe anything.
        # Replayed WAL records, by contrast, land rows wherever the
        # crashed run put them — then the flags must stay.
        sdb.shard_map.dirty.clear()
    return sdb, generation, next_txn


def _sharded_vault(args, sdb):
    from repro.shard import ShardedVault

    stores = [
        FileVault(Path(args.vault_dir) / f"shard-{index}")
        for index in range(sdb.n_shards)
    ]
    return ShardedVault(stores, sdb.shard_map)


def _checkpoint_sharded(args, sdb, generation: int) -> None:
    """Fold the sharded run back into the snapshot and retire shard logs.

    Same crash discipline as :meth:`WalDatabase.checkpoint`: the merged
    snapshot installs atomically with a bumped generation, so shard logs
    that survive a crash before the unlinks are recognized as already
    folded in (their generation is now stale) rather than replayed.
    """
    from repro.shard import collapse

    save_database_atomic(collapse(sdb), args.db, generation=generation + 1)
    for index in range(sdb.n_shards):
        _shard_wal_path(args.db, index).unlink(missing_ok=True)
    default_wal_path(args.db).unlink(missing_ok=True)
    if sdb.shard_map.path is not None:
        sdb.shard_map.save()


def _serve_sharded(args) -> int:
    from repro.shard import (
        ShardedDisguiseService,
        ShardGroupWal,
        recover_migration,
    )
    from repro.storage.wal import WriteAheadLog

    sdb, generation, next_txn = _open_sharded(args, args.shards)
    wals = [
        WriteAheadLog(
            _shard_wal_path(args.db, index),
            fsync=args.fsync,
            generation=generation,
        )
        for index in range(args.shards)
    ]
    group = ShardGroupWal(wals, next_txn=next_txn)
    sdb.set_redo_hook(group)
    vault = _sharded_vault(args, sdb)
    try:
        recover_migration(sdb, vault)
        engine = Disguiser(sdb, vault=vault)
        for spec_path in args.spec or []:
            document = Path(spec_path).read_text(encoding="utf-8")
            engine.register(spec_from_json(document))
        service = ShardedDisguiseService(
            engine,
            _queue_path(args),
            workers=args.workers,
            wal=group,
            lock_timeout=args.lock_timeout,
            max_attempts=args.max_attempts,
        )
        with service:
            drained = service.drain(timeout=args.drain_timeout)
    except BaseException:
        group.close()
        sdb.close()
        raise
    _checkpoint_sharded(args, sdb, generation)
    group.close()
    sdb.close()
    print(json.dumps(service.metrics().legacy(), indent=2, sort_keys=True))
    if not drained:
        print("warning: drain timed out with jobs still queued", file=sys.stderr)
        return 1
    dead = service.queue.counts()["dead"]
    if dead:
        print(f"warning: {dead} job(s) dead-lettered", file=sys.stderr)
        return 1
    return 0


def cmd_serve(args) -> int:
    if args.shards > 1:
        if getattr(args, "wal", False):
            raise ReproError(
                "--wal and --shards are mutually exclusive: sharded serve "
                "always journals to per-shard WALs (<db>.s<i>.wal)"
            )
        return _serve_sharded(args)
    engine, handle = _engine(args)
    service = DisguiseService(
        engine,
        _queue_path(args),
        workers=args.workers,
        wal=handle.wal if handle is not None else None,
        lock_timeout=args.lock_timeout,
        max_attempts=args.max_attempts,
    )
    try:
        with service:
            drained = service.drain(timeout=args.drain_timeout)
    except BaseException:
        if handle is not None:
            handle.close()
        raise
    _finish_write(args, engine.db, handle)
    # Both schemas in one report: new dotted registry names plus the
    # legacy keys old consumers parse (MetricsView.legacy merges them).
    print(json.dumps(service.metrics().legacy(), indent=2, sort_keys=True))
    if not drained:
        print("warning: drain timed out with jobs still queued", file=sys.stderr)
        return 1
    dead = service.queue.counts()["dead"]
    if dead:
        print(f"warning: {dead} job(s) dead-lettered", file=sys.stderr)
        return 1
    return 0


def cmd_submit(args) -> int:
    queue = JobQueue(_queue_path(args))
    try:
        if args.kind == "apply":
            job = queue.submit(
                JOB_APPLY,
                {
                    "spec": args.spec_name,
                    "uid": args.uid,
                    "reversible": not args.irreversible,
                },
            )
        elif args.kind == "reveal":
            job = queue.submit(JOB_REVEAL, {"did": args.did})
        else:
            job = queue.submit(JOB_EXPIRE, {"epoch": args.epoch})
    finally:
        queue.close()
    print(f"queued job {job.job_id}: {args.kind}")
    return 0


def cmd_jobs(args) -> int:
    path = _queue_path(args)
    if not path.exists():
        print("no job queue")
        return 0
    queue = JobQueue(path)
    try:
        jobs = queue.jobs(states=args.state)
    finally:
        queue.close()
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(json.dumps(job.describe(), sort_keys=True))
    return 0


def cmd_metrics(args) -> int:
    db = _read_db(args, verify=False)
    view = db.metrics()
    data = view.legacy() if args.legacy else dict(view)
    if args.json:
        print(json.dumps(data, indent=2, sort_keys=True, default=str))
        return 0
    width = max((len(name) for name in data), default=0)
    for name in sorted(data):
        print(f"{name:<{width}}  {data[name]}")
    return 0


def cmd_shards(args) -> int:
    from repro.shard import ShardMap, migrate_owner, owner_token, recover_migration

    map_path = _shard_map_path(args.db)
    n_shards = args.shards
    if n_shards is None:
        if not map_path.exists():
            raise ReproError(
                f"no shard map at {map_path}; pass --shards N to choose a layout"
            )
        n_shards = ShardMap.load(map_path).n_shards
    sdb, generation, _next_txn = _open_sharded(args, n_shards)
    vault = _sharded_vault(args, sdb) if args.vault_dir else None
    recovered = recover_migration(sdb, vault)
    if recovered is not None:
        print(
            f"recovered torn migration: owner {recovered['owner']} "
            f"rolled back to source shard",
            file=sys.stderr,
        )

    if args.migrate_to is not None:
        if args.owner is None:
            raise ReproError("--migrate-to needs --owner")
        summary = migrate_owner(sdb, args.owner, args.migrate_to, vault=vault)
        # The move is physical, not logical — collapse() is unchanged —
        # but checkpointing here retires any pending shard WALs so the
        # next serve re-partitions with the flipped map from a clean base.
        _checkpoint_sharded(args, sdb, generation)
        print(
            f"moved owner {args.owner} to shard {args.migrate_to}: "
            f"{summary['rows']} row(s), {summary['vault_entries']} vault entr(y/ies)"
        )
        return 0

    router = sdb.router
    shard_map = sdb.shard_map
    if args.owner is not None:
        root = router.analyzer.user_table
        info = {
            "owner": args.owner,
            "home_shard": shard_map.shard_of(args.owner),
            "clean": shard_map.is_clean(args.owner),
            "override": shard_map.overrides.get(owner_token(args.owner)),
            "present_on": [
                index
                for index in range(sdb.n_shards)
                if sdb.shards[index].table(root).rid_of(args.owner) is not None
            ],
        }
        if args.json:
            print(json.dumps(info, sort_keys=True))
        else:
            for key in ("owner", "home_shard", "clean", "override", "present_on"):
                print(f"{key}: {info[key]}")
        return 0

    placements = {
        ts.name: router.placement(ts.name).kind for ts in sdb.schema
    }
    report = {
        "shards": sdb.n_shards,
        "rows_per_shard": [shard.total_rows() for shard in sdb.shards],
        "dirty_owners": len(shard_map.dirty),
        "overrides": len(shard_map.overrides),
        "migrations_done": shard_map.migrations_done,
        "migration_in_flight": shard_map.migration,
        "placements": placements,
    }
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
        return 0
    print(f"{sdb.n_shards} shard(s), map at {map_path}")
    for index, rows in enumerate(report["rows_per_shard"]):
        print(f"  shard {index}: {rows} row(s)")
    print(
        f"dirty owners: {report['dirty_owners']}, "
        f"overrides: {report['overrides']}, "
        f"migrations done: {report['migrations_done']}"
    )
    if shard_map.migration is not None:
        print(f"migration in flight: {shard_map.migration}")
    width = max((len(name) for name in placements), default=0)
    for name in sorted(placements):
        print(f"  {name:<{width}}  {placements[name]}")
    return 0


def cmd_trace(args) -> int:
    import tempfile

    from repro.obs import disable_tracing, enable_tracing, render_spans, spans_to_jsonl
    from repro.storage.wal import WriteAheadLog

    db = _read_db(args)
    threshold = args.slow_ms / 1000.0 if args.slow_ms is not None else None
    with tempfile.TemporaryDirectory() as tmp:
        # Every layer the apply would touch is attached for real — WAL with
        # per-commit fsync, file vault — but against throwaway files, and
        # the in-memory database is never written back: the span tree shows
        # the true shape and cost of the disguise without persisting it.
        wal = WriteAheadLog(Path(tmp) / "trace.wal", fsync="always")
        db.set_redo_hook(wal)
        engine = Disguiser(db, vault=FileVault(Path(tmp) / "vaults"))
        for spec_path in args.spec:
            document = Path(spec_path).read_text(encoding="utf-8")
            engine.register(spec_from_json(document))
        name = _spec_name(engine, args)
        tracer = enable_tracing(threshold)
        try:
            report = engine.apply(name, uid=args.uid)
        finally:
            disable_tracing()
            db.set_redo_hook(None)
            wal.close()
        roots = tracer.take()
        slow_ops = list(tracer.slow_ops)
    if args.json:
        print(spans_to_jsonl(roots))
    else:
        print(render_spans(roots))
        print(
            f"(dry run: disguise {report.disguise_id} traced, nothing persisted)"
        )
    for slow in slow_ops:
        print(slow.render(), file=sys.stderr)
    return 0


def _simtest_seeds(args) -> list[int]:
    if args.seeds is not None:
        lo, _, hi = args.seeds.partition(":")
        try:
            start, stop = int(lo), int(hi)
        except ValueError:
            raise ReproError(f"--seeds wants A:B, got {args.seeds!r}") from None
        if stop <= start:
            raise ReproError(f"--seeds range {args.seeds!r} is empty")
        return list(range(start, stop))
    if args.seed is None:
        raise ReproError("simtest needs --seed N or --seeds A:B")
    return [args.seed]


def cmd_simtest(args) -> int:
    import json as _json

    from repro.simtest import SimConfig, run_sim, shrink_failure

    seeds = _simtest_seeds(args)
    failures = 0
    for seed in seeds:
        app = args.app
        if app == "mixed":
            app = "lobsters" if seed % 2 == 0 else "hotcrp"
        config = SimConfig(
            seed=seed,
            steps=args.steps,
            shards=args.shards,
            workers=args.workers,
            app=app,
            wal_fsync=args.fsync,
            crashes=args.crashes,
            fault_keep_all=args.fault_keep_all,
        )
        result = run_sim(config)
        print(result.report())
        if result.ok:
            if args.trace:
                for line in result.trace:
                    print(f"  | {line}")
            continue
        failures += 1
        plan, trace = result.plan, result.trace
        if args.shrink:
            shrunk = shrink_failure(config, result.plan)
            if shrunk is not None:
                plan, small = shrunk[0], shrunk[1]
                trace = small.trace
                print(
                    f"  shrunk: {len(result.plan.events)} -> "
                    f"{len(plan.events)} event(s), {plan.steps} step(s)"
                )
                for event in plan.events:
                    print(f"    @{event.at} {event.kind} {dict(event.payload)}")
        if args.trace or args.trace_file:
            dump = {
                "seed": seed,
                "app": app,
                "steps": plan.steps,
                "shards": args.shards,
                "workers": args.workers,
                "fsync": args.fsync,
                "events": [
                    {"at": e.at, "kind": e.kind, "payload": list(e.payload)}
                    for e in plan.events
                ],
                "violations": [str(v) for v in result.violations],
                "trace": trace,
            }
            if args.trace_file:
                target = args.trace_file
                if len(seeds) > 1:  # one file per failing seed in a sweep
                    target = f"{target}.seed{seed}"
                Path(target).write_text(
                    _json.dumps(dump, indent=2), encoding="utf-8"
                )
                print(f"  trace written to {target}")
            if args.trace:
                for line in trace:
                    print(f"  | {line}")
    if len(seeds) > 1:
        print(f"simtest: {len(seeds) - failures}/{len(seeds)} seed(s) OK")
    return 1 if failures else 0


def cmd_checkpoint(args) -> int:
    wal_path = default_wal_path(args.db)
    pending = wal_path.stat().st_size if wal_path.exists() else 0
    with open_in_place(args.db) as handle:
        handle.checkpoint()
        rows = handle.db.total_rows()
    print(f"checkpointed {args.db}: {rows} rows, folded {pending} WAL byte(s)")
    return 0


_COMMANDS = {
    "apply": cmd_apply,
    "reveal": cmd_reveal,
    "explain": cmd_explain,
    "history": cmd_history,
    "vault": cmd_vault,
    "check": cmd_check,
    "checkpoint": cmd_checkpoint,
    "audit": cmd_audit,
    "scan-pii": cmd_scan_pii,
    "serve": cmd_serve,
    "shards": cmd_shards,
    "submit": cmd_submit,
    "jobs": cmd_jobs,
    "metrics": cmd_metrics,
    "trace": cmd_trace,
    "simtest": cmd_simtest,
}


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
