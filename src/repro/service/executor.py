"""Multi-worker job execution for the concurrent disguise service.

K worker threads pop jobs off the durable queue, pre-acquire the table
locks the disguise's spec footprint calls for, run the job through a
worker-private :class:`~repro.core.engine.Disguiser` (shared database,
vault, and history; private operator executor and RNG), and group-commit
through the shared write-ahead log.

Lock discipline per job:

1. ``LockHook.start_job`` pins a per-attempt transaction token to the
   worker thread, so pre-acquired locks and statement-time acquisitions
   share one two-phase scope.
2. The spec's table footprint is pre-locked exclusively **in sorted
   order** — jobs whose footprints overlap serialize up front instead of
   meeting in the middle, which avoids most deadlocks outright.  Locks
   the footprint misses (FK parents, cascade children) are still picked
   up statement-by-statement; the wait-for-graph detector catches any
   resulting cycle and the victim retries with backoff via the queue.
3. On commit the engine's WAL unit is appended and locks release
   immediately (early lock release).  The worker then calls
   ``commit_barrier()`` — *outside* every lock — so one leader fsync
   makes many workers' commits durable together.
4. Only after the barrier is the job marked done in the queue: a crash
   can re-run a finished-but-unacked job, never lose an acked one.

Retry semantics: deadlock and lock-timeout victims are rolled back by the
engine and re-queued with exponential backoff; other failures consume
attempts the same way and dead-letter when exhausted.  A crash-induced
re-run of a job whose first run already committed is idempotent: a reveal
sees the disguise inactive in the history, and an apply finds its job
token bound to a disguise id (the binding is written inside the apply
transaction, so it is exactly as durable as the apply itself) — both
complete as no-ops instead of double-applying.
"""

from __future__ import annotations

import threading
from typing import Any

from repro.core.engine import Disguiser
from repro.errors import (
    DeadlockError,
    DisguiseError,
    JobError,
    LockTimeoutError,
    ServiceError,
)
from repro.obs.trace import TRACER as _TRACER
from repro.simtest.clock import resolve_clock
from repro.service.locks import MODE_X, LockHook, is_system_table
from repro.service.queue import DEAD, Job, JobQueue

__all__ = ["WorkerPool", "JOB_APPLY", "JOB_REVEAL", "JOB_EXPIRE"]

JOB_APPLY = "apply"
JOB_REVEAL = "reveal"
JOB_EXPIRE = "expire"


class _LatencyWindow:
    """Fixed-size ring of job latencies for p50/p99 snapshots."""

    def __init__(self, size: int = 2048) -> None:
        self._ring: list[float] = []
        self._size = size
        self._at = 0
        self._mu = threading.Lock()

    def add(self, seconds: float) -> None:
        with self._mu:
            if len(self._ring) < self._size:
                self._ring.append(seconds)
            else:
                self._ring[self._at] = seconds
                self._at = (self._at + 1) % self._size
            # percentiles() sorts a copy; appends never reorder in place.

    def percentiles(self, *points: float) -> dict[float, float]:
        with self._mu:
            data = sorted(self._ring)
        if not data:
            return {p: 0.0 for p in points}
        return {
            p: data[min(len(data) - 1, int(p / 100.0 * len(data)))]
            for p in points
        }


class WorkerPool:
    """K threads executing queue jobs against one shared database."""

    def __init__(
        self,
        queue: JobQueue,
        engine: Disguiser,
        hook: LockHook,
        workers: int = 4,
        wal: Any = None,
        poll_interval: float = 0.1,
        clock: Any = None,
    ) -> None:
        if workers < 1:
            raise ServiceError("worker pool needs at least one worker")
        self.queue = queue
        self.hook = hook
        self.wal = wal
        self.poll_interval = poll_interval
        self._clock = resolve_clock(clock)
        self._engines = [engine.share(seed=index) for index in range(workers)]
        self._threads: list[Any] = []
        self._stop = threading.Event()
        self.latency = _LatencyWindow()
        self.jobs_done = 0
        self.jobs_failed = 0      # failed attempts (retries included)
        self.jobs_dead = 0
        self._count_mu = threading.Lock()
        self.started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> None:
        if self._threads:
            raise ServiceError("worker pool already started")
        self.started_at = self._clock.monotonic()
        for index, engine in enumerate(self._engines):
            worker = engine  # bind per-iteration for the closure

            def run(worker: Disguiser = worker) -> None:
                self._run_worker(worker)

            thread = self._clock.spawn(run, name=f"disguise-worker-{index}")
            self._threads.append(thread)

    def stop(self, timeout: float | None = 30.0) -> None:
        """Finish in-flight jobs and stop claiming new ones."""
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout)
        self._threads.clear()

    @property
    def workers(self) -> int:
        return len(self._engines)

    # -- the worker loop ---------------------------------------------------------

    def _run_worker(self, engine: Disguiser) -> None:
        if self.wal is not None:
            # Deferred group commit is opted into per thread: this worker
            # releases locks at commit and meets the barrier below, while
            # any non-worker thread committing through the shared WAL
            # keeps its configured fsync policy.
            self.wal.defer_sync = True
        while not self._stop.is_set():
            job = self.queue.claim(timeout=self.poll_interval)
            if job is None:
                if self.queue.closed:
                    return
                continue
            self._execute(engine, job)

    def _execute(self, engine: Disguiser, job: Job) -> None:
        started = self._clock.monotonic()
        token = f"job-{job.job_id}a{job.attempts}"
        self.hook.start_job(token)
        try:
            with _TRACER.span(
                "service.job", job_id=job.job_id, kind=job.kind,
                attempt=job.attempts,
            ):
                result = self._dispatch(engine, job, token)
        except (DeadlockError, LockTimeoutError) as exc:
            # The engine already rolled back; locks drop here so the other
            # cycle members can proceed before the victim's backoff ends.
            self.hook.end_job()
            self._record_failure(job, f"{type(exc).__name__}: {exc}")
            return
        except Exception as exc:  # noqa: BLE001 - a job must never kill its worker
            self.hook.end_job()
            self._record_failure(job, f"{type(exc).__name__}: {exc}")
            return
        else:
            self.hook.end_job()
        # Durability point: locks are long gone (early lock release), and
        # one leader fsync covers every worker that reached this barrier.
        if self.wal is not None:
            self.wal.commit_barrier()
        try:
            self.queue.complete(job, result)
        except JobError:
            # The queue closed between this job's durability barrier and
            # its done-ack (a shutdown that gave up on the join timeout).
            # The job's effects are durable; it re-runs after the next
            # open and completes as a no-op via the history dedupe.
            return
        self.latency.add(self._clock.monotonic() - started)
        with self._count_mu:
            self.jobs_done += 1

    def _record_failure(self, job: Job, error: str) -> None:
        state = self.queue.fail(job, error)
        with self._count_mu:
            self.jobs_failed += 1
            if state == DEAD:
                self.jobs_dead += 1

    # -- job kinds ---------------------------------------------------------------

    def _dispatch(self, engine: Disguiser, job: Job, token: str) -> dict[str, Any]:
        payload = job.payload
        if job.kind == JOB_APPLY:
            job_key = f"job-{job.job_id}"
            done_did = engine.history.job_applied(job_key)
            if done_did is not None:
                # Already applied durably — this job ran, crashed (or lost
                # its ack) before the queue recorded it, and was re-queued.
                # Completing without re-applying is the correct dedupe.
                return {"did": done_did, "noop": True}
            spec = engine.spec(str(payload["spec"]))
            self._prelock(token, spec.table_names)
            report = engine.apply(
                spec,
                uid=payload.get("uid"),
                reversible=bool(payload.get("reversible", True)),
                job=job_key,
            )
            return {"did": report.disguise_id, "rows": report.rows_touched}
        if job.kind == JOB_REVEAL:
            did = int(payload["did"])
            record = engine.history.get(did)
            if not record.active:
                # Already revealed — e.g. this job ran, crashed before its
                # ack, and was re-queued. Completing is the correct dedupe.
                return {"did": did, "noop": True}
            spec = engine.spec(record.name)
            self._prelock(token, spec.table_names)
            try:
                report = engine.reveal(did)
            except DisguiseError as exc:
                if "not active" in str(exc):
                    return {"did": did, "noop": True}
                raise
            return {
                "did": did,
                "restored": report.rows_reinserted + report.values_restored,
            }
        if job.kind == JOB_EXPIRE:
            dropped = engine.vault.expire_before(int(payload["epoch"]))
            return {"dropped": dropped}
        raise ServiceError(f"unknown job kind {job.kind!r}")

    def _prelock(self, token: str, tables: tuple[str, ...]) -> None:
        """Exclusively lock the spec footprint in sorted (canonical) order."""
        for table in sorted(tables):
            if not is_system_table(table):
                self.hook.manager.acquire(
                    token, table, MODE_X, timeout=self.hook.timeout
                )
