"""Table-granularity lock manager for the concurrent disguise service.

The paper frames the disguising tool as a service that sits beside the
application and fields many users' deletion/anonymization requests at
once.  Concurrent disguises are plain transactions over the embedded
database, so the service needs what any transactional engine needs:

* **Shared/exclusive table locks** — readers share, writers exclude.
  Table granularity matches the engine's statement shapes (a disguise
  touches a handful of tables with per-user predicates), keeps the lock
  table tiny, and makes the two-phase discipline easy to audit.
* **FIFO fairness** — a request never overtakes an earlier incompatible
  waiter (no barging), so a stream of readers cannot starve a writer.
  The one exception is a lock *upgrade* (S held, X wanted): upgrades wait
  at the front of the queue, because making an upgrader queue behind new
  arrivals converts every read-modify-write pair into a deadlock.
* **Wait-timeout** — every block carries a timeout; expiry raises
  :class:`~repro.errors.LockTimeoutError` so a stuck job fails visibly
  instead of hanging a worker forever.
* **Deadlock detection** — each blocked request adds wait-for edges to
  the transactions it is behind (current holders and earlier incompatible
  waiters).  A cycle through the requester raises
  :class:`~repro.errors.DeadlockError` *at the requester* (victim = the
  transaction that closed the cycle); the executor rolls the job back,
  releases its locks, and retries with backoff.

Locks are held until :meth:`LockManager.release_all` — strict two-phase
locking, which with table granularity makes concurrent disguise
transactions serializable (whoever writes a table second serializes after
whoever wrote it first, on every table they share).

:class:`LockHook` adapts the manager to the
:class:`~repro.storage.database.Database` lock-hook protocol: statements
declare their table accesses and the hook turns them into 2PL lock
acquisitions for application tables and statement-scoped *latches* for
engine-internal tables (names starting with ``_``: the disguise history,
the placeholder registry, table vaults).  System-table rows are private
to one disguise (each job writes only its own history row), so per-
statement mutual exclusion is enough — holding a 2PL lock on the history
table until commit would serialize every job behind a metadata hotspot.
"""

from __future__ import annotations

import threading
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable

from repro.errors import DeadlockError, LockTimeoutError, ServiceError
from repro.simtest.clock import resolve_clock

__all__ = ["LockManager", "LockStats", "LockHook", "MODE_S", "MODE_X"]

MODE_S = "S"
MODE_X = "X"


def _compatible(held: str, wanted: str) -> bool:
    return held == MODE_S and wanted == MODE_S


@dataclass
class LockStats:
    """Cumulative lock-manager counters (read by the service metrics)."""

    acquisitions: int = 0   # grants, including immediate ones
    waits: int = 0          # requests that blocked at least once
    wait_time_s: float = 0.0
    deadlocks: int = 0      # requests aborted as deadlock victims
    timeouts: int = 0
    upgrades: int = 0       # S -> X upgrades granted

    def snapshot(self) -> "LockStats":
        return LockStats(
            self.acquisitions,
            self.waits,
            self.wait_time_s,
            self.deadlocks,
            self.timeouts,
            self.upgrades,
        )


class _Waiter:
    __slots__ = ("txn", "mode", "granted", "abandoned", "upgrade")

    def __init__(self, txn: Hashable, mode: str, upgrade: bool) -> None:
        self.txn = txn
        self.mode = mode
        self.upgrade = upgrade
        self.granted = False
        self.abandoned = False


class _TableLock:
    __slots__ = ("holders", "waiters")

    def __init__(self) -> None:
        # txn -> mode currently held. Ordered so diagnostics are stable.
        self.holders: OrderedDict[Hashable, str] = OrderedDict()
        self.waiters: deque[_Waiter] = deque()


class LockManager:
    """Shared/exclusive table locks with FIFO queues and deadlock detection.

    Transactions are any hashable ids (the executor uses per-job tokens;
    the :class:`LockHook` defaults to the current thread).  All state is
    guarded by one mutex and one condition variable — lock traffic is a
    few acquisitions per disguise, far off any hot path.
    """

    def __init__(
        self, default_timeout: float | None = 30.0, clock: Any = None
    ) -> None:
        self.default_timeout = default_timeout
        self._clock = resolve_clock(clock)
        self._mu = threading.Condition(threading.Lock())
        self._tables: dict[str, _TableLock] = {}
        self.stats = LockStats()

    # -- public API --------------------------------------------------------------

    def acquire(
        self,
        txn: Hashable,
        table: str,
        mode: str = MODE_X,
        timeout: float | None = None,
    ) -> None:
        """Grant *txn* a lock on *table*, blocking FIFO behind conflicts.

        Re-acquiring a mode already covered is a no-op; S-held + X-wanted
        is an upgrade.  Raises :class:`~repro.errors.DeadlockError` when
        waiting would close a wait-for cycle (the requester is the
        victim) and :class:`~repro.errors.LockTimeoutError` on timeout.
        """
        if mode not in (MODE_S, MODE_X):
            raise ServiceError(f"unknown lock mode {mode!r}")
        if timeout is None:
            timeout = self.default_timeout
        self._clock.tick("lock.acquire", f"{table}:{mode}")
        with self._mu:
            lock = self._tables.setdefault(table, _TableLock())
            held = lock.holders.get(txn)
            if held is not None and (held == MODE_X or mode == MODE_S):
                return  # already covered
            upgrade = held == MODE_S and mode == MODE_X
            if self._grantable(lock, txn, mode):
                lock.holders[txn] = mode
                self.stats.acquisitions += 1
                if upgrade:
                    self.stats.upgrades += 1
                return
            waiter = _Waiter(txn, mode, upgrade)
            # Upgrades queue at the front: the upgrader already holds S, so
            # anything queued ahead of it is waiting *on it* — queuing the
            # upgrade behind them would deadlock by construction.
            if upgrade:
                lock.waiters.appendleft(waiter)
            else:
                lock.waiters.append(waiter)
            self.stats.waits += 1
            self._check_deadlock(txn, table, waiter)
            started = self._clock.monotonic()
            deadline = None if timeout is None else started + timeout
            try:
                while not waiter.granted:
                    remaining = None
                    if deadline is not None:
                        remaining = deadline - self._clock.monotonic()
                        if remaining <= 0:
                            self.stats.timeouts += 1
                            raise LockTimeoutError(
                                f"{txn!r}: timed out after {timeout:.3f}s waiting "
                                f"for {mode} lock on {table!r} "
                                f"(held by {list(lock.holders)!r})"
                            )
                    self._clock.wait(self._mu, remaining)
                    if not waiter.granted:
                        # Another waiter's block may have closed a cycle
                        # through us since we last checked.
                        self._check_deadlock(txn, table, waiter)
            except BaseException:
                waiter.abandoned = True
                if waiter.granted:
                    # The grant landed (holders updated, waiter dequeued)
                    # before the interrupt — e.g. a KeyboardInterrupt in
                    # wait() after _grant_waiters ran. Undo it: the caller
                    # sees this acquire fail, and an unpinned thread has no
                    # release_all to clean up, so keeping the entry would
                    # leak the table lock forever. An upgrader falls back
                    # to the S it held before requesting X.
                    if waiter.upgrade:
                        lock.holders[txn] = MODE_S
                    else:
                        lock.holders.pop(txn, None)
                if waiter in lock.waiters:
                    lock.waiters.remove(waiter)
                self._grant_waiters(lock)
                self._clock.notify_all(self._mu)
                raise
            finally:
                self.stats.wait_time_s += self._clock.monotonic() - started

    def release_all(self, txn: Hashable) -> int:
        """Release every lock *txn* holds; returns how many were held."""
        released = 0
        with self._mu:
            for lock in self._tables.values():
                if lock.holders.pop(txn, None) is not None:
                    released += 1
                    self._grant_waiters(lock)
            if released:
                self._clock.notify_all(self._mu)
        return released

    def holding(self, txn: Hashable) -> dict[str, str]:
        """Tables *txn* currently holds, with modes (diagnostics)."""
        with self._mu:
            return {
                table: lock.holders[txn]
                for table, lock in self._tables.items()
                if txn in lock.holders
            }

    def waiters(self) -> int:
        """Number of blocked requests right now (metrics: lock waits)."""
        with self._mu:
            return sum(len(lock.waiters) for lock in self._tables.values())

    # -- internals (all called with self._mu held) ---------------------------------

    def _grantable(self, lock: _TableLock, txn: Hashable, mode: str) -> bool:
        for holder, held in lock.holders.items():
            if holder != txn and not _compatible(held, mode):
                return False
        # FIFO: do not barge past earlier waiters unless upgrading (an
        # upgrader's conflict set is exactly the other holders).
        if lock.holders.get(txn) == MODE_S and mode == MODE_X:
            return True
        for waiter in lock.waiters:
            if waiter.txn != txn:
                return False
        return True

    def _grant_waiters(self, lock: _TableLock) -> None:
        """Grant from the queue front while compatible (strict FIFO)."""
        granted_any = False
        while lock.waiters:
            waiter = lock.waiters[0]
            ok = True
            for holder, held in lock.holders.items():
                if holder != waiter.txn and not _compatible(held, waiter.mode):
                    ok = False
                    break
            if not ok:
                break
            lock.waiters.popleft()
            lock.holders[waiter.txn] = waiter.mode
            waiter.granted = True
            self.stats.acquisitions += 1
            if waiter.upgrade:
                self.stats.upgrades += 1
            granted_any = True
        if granted_any:
            self._clock.notify_all(self._mu)

    def _blockers(self, table: str, me: _Waiter) -> set[Hashable]:
        """Transactions *me* is waiting behind on *table*."""
        lock = self._tables[table]
        out: set[Hashable] = set()
        for holder, held in lock.holders.items():
            if holder != me.txn and not _compatible(held, me.mode):
                out.add(holder)
        for waiter in lock.waiters:
            if waiter is me:
                break
            if waiter.txn != me.txn and not (
                _compatible(waiter.mode, me.mode)
            ):
                out.add(waiter.txn)
        return out

    def _wait_graph(self) -> dict[Hashable, set[Hashable]]:
        graph: dict[Hashable, set[Hashable]] = {}
        for table, lock in self._tables.items():
            for waiter in lock.waiters:
                graph.setdefault(waiter.txn, set()).update(
                    self._blockers(table, waiter)
                )
        return graph

    def _check_deadlock(self, txn: Hashable, table: str, waiter: _Waiter) -> None:
        """Raise (and dequeue *waiter*) if *txn* is on a wait-for cycle."""
        graph = self._wait_graph()
        cycle = _find_cycle(graph, txn)
        if cycle is None:
            return
        lock = self._tables[table]
        waiter.abandoned = True
        if waiter in lock.waiters:
            lock.waiters.remove(waiter)
        self.stats.deadlocks += 1
        self._grant_waiters(lock)
        self._clock.notify_all(self._mu)
        raise DeadlockError(
            f"{txn!r}: waiting for {waiter.mode} on {table!r} closes a "
            f"wait-for cycle {' -> '.join(repr(t) for t in cycle)}",
            cycle=cycle,
        )


def _find_cycle(
    graph: dict[Hashable, set[Hashable]], start: Hashable
) -> tuple[Hashable, ...] | None:
    """A wait-for cycle through *start*, or None (iterative DFS)."""
    path: list[Hashable] = [start]
    on_path = {start}
    iters = [iter(graph.get(start, ()))]
    while iters:
        try:
            nxt = next(iters[-1])
        except StopIteration:
            on_path.discard(path.pop())
            iters.pop()
            continue
        if nxt == start:
            return tuple(path) + (start,)
        if nxt in on_path:
            continue  # a cycle not through start; its members will detect it
        path.append(nxt)
        on_path.add(nxt)
        iters.append(iter(graph.get(nxt, ())))
    return None


# -- Database adapter ------------------------------------------------------------


def is_system_table(name: str) -> bool:
    """Engine-internal tables are latched per statement, not 2PL-locked."""
    return name.startswith("_")


class _HookState(threading.local):
    """Per-thread hook state: current txn token and held latches."""

    def __init__(self) -> None:
        self.txn: Hashable | None = None     # explicit job token, if any
        self.pinned = False                  # locks live until end_job
        self.depth = 0                       # outermost-statement nesting
        self.tx_open = False                 # inside a database transaction
        self.latches: list[threading.RLock] = []
        self.released = False                # ELR already happened this job


class LockHook:
    """Wires a :class:`LockManager` into ``Database`` statement execution.

    Protocol (called by :class:`~repro.storage.database.Database`):

    * ``on_statement_start(table, mode)`` / ``on_statement_end()`` —
      bracket every outermost statement; acquisitions for system tables
      are latches released at statement end.
    * ``on_access(table, mode)`` — additional table accesses a statement
      declares (FK parents, cascade children).
    * ``on_begin()`` / ``on_txn_end()`` — outermost transaction
      boundaries; 2PL locks release at transaction end (strict 2PL with
      early lock release: the WAL unit is already appended when the
      database fires ``on_txn_end``, so only the group fsync happens
      after locks are gone).

    Executor-side: ``start_job(txn)`` pins a job token for the thread so
    pre-acquired locks and statement-time acquisitions share one 2PL
    scope across the whole job; ``end_job()`` releases whatever is left.
    Threads without a pinned job (the CLI, tests, metrics readers) get
    statement-scoped locks outside transactions and transaction-scoped
    locks inside them.
    """

    def __init__(self, manager: LockManager, timeout: float | None = None) -> None:
        self.manager = manager
        self.timeout = timeout
        self._state = _HookState()
        self._latch_mu = threading.Lock()
        self._latches: dict[str, threading.RLock] = {}

    # -- executor API -------------------------------------------------------------

    def start_job(self, txn: Hashable) -> None:
        state = self._state
        if state.txn is not None:
            raise ServiceError(f"thread already runs job {state.txn!r}")
        state.txn = txn
        state.pinned = True
        state.released = False

    def end_job(self) -> None:
        state = self._state
        if state.txn is not None and not state.released:
            self.manager.release_all(state.txn)
        state.txn = None
        state.pinned = False
        state.released = False

    def current_txn(self) -> Hashable:
        state = self._state
        return state.txn if state.txn is not None else threading.get_ident()

    # -- Database protocol --------------------------------------------------------

    def on_statement_start(self, table: str, mode: str) -> None:
        self._state.depth += 1
        self.on_access(table, mode)

    def on_access(self, table: str, mode: str) -> None:
        state = self._state
        if is_system_table(table):
            with self._latch_mu:
                latch = self._latches.setdefault(table, threading.RLock())
            latch.acquire()
            state.latches.append(latch)
            return
        self.manager.acquire(
            self.current_txn(), table, mode, timeout=self.timeout
        )
        state.released = False

    def on_statement_end(self) -> None:
        state = self._state
        state.depth -= 1
        if state.depth > 0:
            return
        for latch in reversed(state.latches):
            latch.release()
        state.latches.clear()
        # Unpinned threads outside a transaction hold locks only for the
        # statement (there is no later commit to release them at).
        if not state.pinned and not state.tx_open:
            self.manager.release_all(self.current_txn())

    def on_begin(self) -> None:
        self._state.tx_open = True

    def on_txn_end(self) -> None:
        state = self._state
        state.tx_open = False
        self.manager.release_all(self.current_txn())
        state.released = True
