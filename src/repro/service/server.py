"""The disguise service façade: submit / status / drain / shutdown.

:class:`DisguiseService` assembles the concurrency stack over one
database:

* a :class:`~repro.service.locks.LockManager` +
  :class:`~repro.service.locks.LockHook` attached to the database, so
  every statement any worker runs participates in two-phase locking;
* a :class:`~repro.service.queue.JobQueue` journaling requests durably;
* a :class:`~repro.service.executor.WorkerPool` of K engines sharing the
  database, vault, and history;
* when the database is WAL-backed, deferred group commit: workers release
  locks at commit and meet at a leader/follower fsync barrier.

The façade is what the CLI ``serve`` command and in-process embedders
use. It deliberately has no network listener — the paper's tool sits
*beside* the application, and a wire protocol would add nothing to what
this PR exercises (the job queue is the public boundary).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from repro.core.engine import Disguiser
from repro.errors import ServiceError
from repro.service.executor import JOB_APPLY, JOB_EXPIRE, JOB_REVEAL, WorkerPool
from repro.service.locks import LockHook, LockManager
from repro.service.queue import DONE, Job, JobQueue
from repro.simtest.clock import resolve_clock
from repro.spec.disguise import DisguiseSpec

__all__ = ["DisguiseService", "default_queue_path"]


def default_queue_path(snapshot_path: str | Path) -> Any:
    from repro.storage import fsio

    path = fsio.as_path(snapshot_path)
    return path.with_name(path.name + ".jobs")


class DisguiseService:
    """A concurrent disguise server over one database.

    ``engine`` supplies the shared database/vault/history; ``wal`` (a
    :class:`~repro.storage.wal.WriteAheadLog`, optional) enables the
    deferred group-commit path. The service owns the queue and the
    workers; the engine and its database remain owned by the caller —
    ``shutdown()`` detaches the lock hook and leaves both usable.
    """

    def __init__(
        self,
        engine: Disguiser,
        queue_path: str | Path,
        workers: int = 4,
        wal: Any = None,
        lock_timeout: float | None = 10.0,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        queue_fsync: bool = True,
        poll_interval: float = 0.05,
        clock: Any = None,
    ) -> None:
        self.engine = engine
        self.wal = wal
        self._clock = resolve_clock(clock)
        self.locks = LockManager(default_timeout=lock_timeout, clock=clock)
        self.hook = LockHook(self.locks, timeout=lock_timeout)
        self.queue = JobQueue(
            queue_path,
            max_attempts=max_attempts,
            backoff_base=backoff_base,
            fsync=queue_fsync,
            clock=clock,
        )
        self.pool = self._pool_class(
            self.queue,
            engine,
            self.hook,
            workers=workers,
            wal=wal,
            poll_interval=poll_interval,
            clock=clock,
        )
        self._started = False
        self._stopped = False

    #: Worker-pool implementation — subclasses (the sharded service)
    #: substitute a pool with different prelock/dispatch routing.
    _pool_class = WorkerPool

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "DisguiseService":
        if self._started:
            raise ServiceError("service already started")
        self.engine.db.set_lock_hook(self.hook)
        self._register_metrics(self.engine.db.obs)
        self.pool.start()
        self._started = True
        return self

    def drain(self, timeout: float | None = None) -> bool:
        """Block until every queued job reaches DONE or DEAD."""
        return self.queue.wait_idle(timeout)

    def shutdown(self, timeout: float | None = 30.0) -> None:
        """Stop claiming, finish in-flight jobs, release everything."""
        if self._stopped:
            return
        self._stopped = True
        # Workers stop first, against a live queue: an in-flight job's
        # done-ack must land in the journal. Closing the queue before the
        # join would drop finishing jobs' acks (they would re-run after
        # restart) and make claims race a closed journal file.
        self.pool.stop(timeout)
        self.queue.close()          # stops claims; submit now fails
        if self.wal is not None:
            self.wal.sync()
        self.engine.db.set_lock_hook(None)

    def __enter__(self) -> "DisguiseService":
        return self.start() if not self._started else self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False

    # -- submission --------------------------------------------------------------

    def register(self, specs: Iterable[DisguiseSpec]) -> None:
        for spec in specs:
            self.engine.register(spec)

    def submit_apply(
        self,
        spec: DisguiseSpec | str,
        uid: Any = None,
        reversible: bool = True,
        max_attempts: int | None = None,
    ) -> Job:
        name = spec if isinstance(spec, str) else spec.name
        self.engine.spec(name)  # fail fast on unregistered specs
        return self.queue.submit(
            JOB_APPLY,
            {"spec": name, "uid": uid, "reversible": reversible},
            max_attempts=max_attempts,
        )

    def submit_reveal(self, did: int, max_attempts: int | None = None) -> Job:
        return self.queue.submit(
            JOB_REVEAL, {"did": int(did)}, max_attempts=max_attempts
        )

    def submit_expire(self, epoch: int) -> Job:
        return self.queue.submit(JOB_EXPIRE, {"epoch": int(epoch)})

    # -- introspection -----------------------------------------------------------

    def status(self, job_id: int) -> dict[str, Any]:
        return self.queue.get(job_id).describe()

    def wait_for(self, job: Job | int, timeout: float | None = None) -> dict[str, Any]:
        """Block until one job finishes; returns its description."""
        job_id = job.job_id if isinstance(job, Job) else int(job)
        deadline = None if timeout is None else self._clock.monotonic() + timeout
        while True:
            described = self.status(job_id)
            if described["state"] in (DONE, "dead"):
                return described
            if deadline is not None and self._clock.monotonic() > deadline:
                raise ServiceError(f"timed out waiting for job {job_id}")
            self._clock.sleep(0.01)

    #: Old hand-built ``metrics()`` keys -> registry names. Indexing the
    #: view with an old key still works (DeprecationWarning); the CLI's
    #: serve report keeps both schemas via ``MetricsView.legacy()``.
    _METRIC_ALIASES = {
        "workers": "service.workers",
        "jobs_done": "service.jobs_done",
        "jobs_failed": "service.jobs_failed",
        "jobs_dead": "service.jobs_dead",
        "jobs_per_s": "service.jobs_per_s",
        "queue_depth": "service.queue_depth",
        "queue_counts": "service.queue_counts",
        "lock_acquisitions": "service.lock_acquisitions",
        "lock_waits": "service.lock_waits",
        "lock_wait_time_s": "service.lock_wait_s",
        "deadlocks": "service.deadlocks",
        "lock_timeouts": "service.lock_timeouts",
        "p50_latency_s": "service.job_p50_s",
        "p99_latency_s": "service.job_p99_s",
        "wal_syncs": "wal.fsyncs",
    }

    def _register_metrics(self, registry: Any) -> None:
        """Register ``service.*`` gauges over the pool/queue/lock state."""
        pool = self.pool
        clock = self._clock

        def jobs_per_s() -> float:
            elapsed = (
                clock.monotonic() - pool.started_at if pool.started_at else 0.0
            )
            return (pool.jobs_done / elapsed) if elapsed > 0 else 0.0

        registry.gauge("service.workers", lambda: pool.workers)
        registry.gauge("service.jobs_done", lambda: pool.jobs_done)
        registry.gauge("service.jobs_failed", lambda: pool.jobs_failed)
        registry.gauge("service.jobs_dead", lambda: pool.jobs_dead)
        registry.gauge("service.jobs_per_s", jobs_per_s)
        registry.gauge("service.queue_depth", self.queue.depth)
        registry.gauge("service.queue_counts", self.queue.counts)
        registry.gauge(
            "service.lock_acquisitions", lambda: self.locks.stats.acquisitions
        )
        registry.gauge("service.lock_waits", lambda: self.locks.stats.waits)
        registry.gauge(
            "service.lock_wait_s",
            lambda: round(self.locks.stats.wait_time_s, 6),
        )
        registry.gauge("service.deadlocks", lambda: self.locks.stats.deadlocks)
        registry.gauge("service.lock_timeouts", lambda: self.locks.stats.timeouts)
        registry.gauge(
            "service.job_p50_s",
            lambda: round(pool.latency.percentiles(50.0)[50.0], 6),
        )
        registry.gauge(
            "service.job_p99_s",
            lambda: round(pool.latency.percentiles(99.0)[99.0], 6),
        )
        registry.register_aliases(self._METRIC_ALIASES)

    def metrics(self) -> Any:
        """Service metrics snapshot: throughput, depth, waits, latency.

        Returns a :class:`repro.obs.MetricsView` over the database's
        registry, restricted to ``service.*`` and ``wal.*``. The old keys
        (``jobs_done``, ``p99_latency_s``, ``wal_syncs``, ...) still index
        into it via deprecation aliases.
        """
        if not self._started:
            # The gauges register at start(); a pre-start snapshot would
            # silently be empty, which no caller means to ask for.
            self._register_metrics(self.engine.db.obs)
        return self.engine.db.obs.view(
            prefix=("service", "wal"), aliases=self._METRIC_ALIASES
        )
