"""Durable job queue for the concurrent disguise service.

Disguise, reveal, and checkpoint requests arrive as *jobs*: JSONL records
in an append-only journal, so an accepted request survives a crash of the
service process. The journal reuses the WAL's durability idioms from the
storage layer — CRC-framed appends, a torn tail tolerated as the crash
signature, corruption elsewhere rejected loudly, and an atomic
write-temp/fsync/rename compaction.

Lifecycle::

    submit -> PENDING -> claim -> RUNNING -> complete -> DONE
                 ^                   |
                 |                   +-- fail (attempts left) -> PENDING
                 |                   |     (retry after exponential backoff)
                 |                   +-- fail (attempts exhausted) -> DEAD
                 +--- crash recovery re-queues RUNNING jobs

Every transition appends one event line; replaying the journal folds the
events into each job's final state. A job that was RUNNING when the
process died was claimed but never finished: reopening the journal
re-queues it (or dead-letters it when its attempts were already spent, so
a crash-looping job cannot wedge the service forever).

Durability boundary: ``complete``/``fail`` are appended *after* the
database WAL has made the job's changes durable (the executor orders
them). A crash between the two leaves a finished job marked RUNNING — it
re-runs on recovery, which is why disguise jobs are deduplicated against
the disguise history rather than blindly re-applied.

Line format: ``<crc32 hex, 8 chars> <event json>\\n``; the CRC covers the
JSON bytes.
"""

from __future__ import annotations

import json
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.errors import JobError, QueueCorruptionError
from repro.simtest.clock import resolve_clock
from repro.storage import fsio
from repro.storage.persist import _fsync_dir

__all__ = [
    "Job",
    "JobQueue",
    "PENDING",
    "RUNNING",
    "DONE",
    "FAILED",
    "DEAD",
    "JOB_STATES",
]

PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"  # transient: failed this attempt, will retry
DEAD = "dead"      # dead-lettered: attempts exhausted

JOB_STATES = (PENDING, RUNNING, DONE, FAILED, DEAD)
_STATES = JOB_STATES


@dataclass
class Job:
    """One queued request and its current lifecycle state."""

    job_id: int
    kind: str                       # "apply" | "reveal" | "checkpoint" | ...
    payload: dict[str, Any] = field(default_factory=dict)
    state: str = PENDING
    attempts: int = 0               # claims so far (incremented at claim)
    max_attempts: int = 3
    not_before: float = 0.0         # wall-clock retry gate (backoff)
    enqueued_at: float = 0.0
    finished_at: float | None = None
    error: str | None = None
    result: dict[str, Any] | None = None

    def describe(self) -> dict[str, Any]:
        """JSON-safe summary (CLI ``jobs`` listing, service status API)."""
        out = {
            "id": self.job_id,
            "kind": self.kind,
            "state": self.state,
            "attempts": self.attempts,
            "payload": self.payload,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["result"] = self.result
        return out


def _frame(event: dict[str, Any]) -> str:
    body = json.dumps(event, separators=(",", ":"))
    return f"{zlib.crc32(body.encode('utf-8')):08x} {body}\n"


def _parse_line(line: str, lineno: int, path: Path, last: bool) -> dict[str, Any] | None:
    """Decode one journal line; ``None`` means a tolerable torn tail."""
    def torn_or_raise(reason: str) -> None:
        if not last:
            raise QueueCorruptionError(f"{path}:{lineno}: {reason}")

    if len(line) < 10 or line[8] != " ":
        torn_or_raise("malformed frame with valid lines after it")
        return None
    crc_hex, body = line[:8], line[9:]
    try:
        want = int(crc_hex, 16)
    except ValueError:
        torn_or_raise("bad CRC field with valid lines after it")
        return None
    if zlib.crc32(body.encode("utf-8")) != want:
        torn_or_raise("CRC mismatch with valid lines after it")
        return None
    try:
        return json.loads(body)
    except json.JSONDecodeError:
        torn_or_raise("undecodable event with valid lines after it")
        return None


class JobQueue:
    """A durable multi-producer/multi-consumer job queue.

    All state transitions are journaled before they are visible to other
    threads, and ``fsync=True`` (the default) makes each append durable
    before the call returns — a submitted job is never silently lost.

    ``backoff_base`` and ``backoff_cap`` shape the retry schedule: attempt
    *n* re-enters the queue after ``min(cap, base * 2**(n-1))`` seconds.
    """

    def __init__(
        self,
        path: str | Path,
        max_attempts: int = 3,
        backoff_base: float = 0.05,
        backoff_cap: float = 5.0,
        fsync: bool = True,
        clock: Any = None,
    ) -> None:
        self.path = fsio.as_path(path)
        self._clock = resolve_clock(clock)
        self.max_attempts = max(1, max_attempts)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.fsync = fsync
        self._cond = threading.Condition()
        self._jobs: dict[int, Job] = {}
        self._next_id = 1
        self._closed = False
        self.requeued_on_recovery = 0
        self.dead_on_recovery = 0
        self._recover()
        self._handle = self.path.open("a", encoding="utf-8")

    # -- journal ------------------------------------------------------------------

    def _recover(self) -> None:
        """Fold the journal into live jobs; re-queue crashed RUNNING jobs.

        A crash mid-append can leave a torn final line. It is discarded
        logically *and* physically (the file is truncated back to the last
        complete frame) — appending after debris would glue the next event
        onto the torn line and bury it, losing an acked submission.
        """
        if not self.path.exists():
            self.path.parent.mkdir(parents=True, exist_ok=True)
            return
        raw = self.path.read_bytes()
        chunks = raw.split(b"\n")
        terminated = bool(chunks) and chunks[-1] == b""
        if terminated:
            chunks.pop()
        events: list[dict[str, Any]] = []
        consumed = 0
        for idx, chunk in enumerate(chunks):
            last = idx == len(chunks) - 1
            try:
                line = chunk.decode("utf-8")
            except UnicodeDecodeError:
                if not last:
                    raise QueueCorruptionError(
                        f"{self.path}:{idx + 1}: undecodable bytes with valid "
                        f"lines after them"
                    ) from None
                break
            event = _parse_line(line, idx + 1, self.path, last=last)
            if event is None:
                break
            events.append(event)
            consumed += len(chunk) + (1 if (not last or terminated) else 0)
        for event in events:
            self._apply_event(event)
        if consumed < len(raw):
            with self.path.open("rb+") as handle:
                handle.truncate(consumed)
                if self.fsync:
                    fsio.fsync_handle(handle)
        elif raw and not terminated:
            # The final frame parsed but lost its newline; terminate it so
            # the next append starts a fresh line.
            with self.path.open("ab") as handle:
                handle.write(b"\n")
                if self.fsync:
                    fsio.fsync_handle(handle)
        now = self._clock.time()
        for job in self._jobs.values():
            if job.state != RUNNING:
                continue
            # Claimed but never finished: the crash signature. The claim
            # already spent an attempt, so a job that crashes the process
            # every time runs out of attempts instead of looping forever.
            if job.attempts >= job.max_attempts:
                job.state = DEAD
                job.error = job.error or "process died while the job was running"
                job.finished_at = now
                self.dead_on_recovery += 1
            else:
                job.state = PENDING
                job.not_before = now  # no backoff: the job did not fail
                self.requeued_on_recovery += 1

    def _apply_event(self, event: dict[str, Any]) -> None:
        kind = event.get("ev")
        if kind == "enqueue":
            job = Job(
                job_id=int(event["id"]),
                kind=str(event["kind"]),
                payload=dict(event.get("payload") or {}),
                max_attempts=int(event.get("max_attempts", self.max_attempts)),
                enqueued_at=float(event.get("at", 0.0)),
            )
            self._jobs[job.job_id] = job
            self._next_id = max(self._next_id, job.job_id + 1)
            return
        job = self._jobs.get(int(event.get("id", -1)))
        if job is None:
            raise QueueCorruptionError(
                f"{self.path}: event {kind!r} for unknown job {event.get('id')!r}"
            )
        if kind == "claim":
            job.state = RUNNING
            job.attempts = int(event.get("attempts", job.attempts + 1))
        elif kind == "done":
            job.state = DONE
            job.result = event.get("result")
            job.finished_at = float(event.get("at", 0.0))
        elif kind == "fail":
            job.state = PENDING
            job.error = event.get("error")
            job.not_before = float(event.get("retry_at", 0.0))
        elif kind == "dead":
            job.state = DEAD
            job.error = event.get("error")
            job.finished_at = float(event.get("at", 0.0))
        else:
            raise QueueCorruptionError(f"{self.path}: unknown event {kind!r}")

    def _append(self, event: dict[str, Any]) -> None:
        if self._closed:
            raise JobError("queue is closed")
        self._handle.write(_frame(event))
        self._handle.flush()
        if self.fsync:
            fsio.fsync_handle(self._handle)

    def compact(self) -> None:
        """Atomically rewrite the journal to one snapshot line per job.

        Dropping DONE/DEAD history is the caller's choice via
        :meth:`forget_finished`; compaction itself is lossless.
        """
        with self._cond:
            if self._closed:
                raise JobError("queue is closed")
            tmp = self.path.with_suffix(self.path.suffix + ".tmp")
            with tmp.open("w", encoding="utf-8") as handle:
                for job in sorted(self._jobs.values(), key=lambda j: j.job_id):
                    handle.write(_frame({
                        "ev": "enqueue", "id": job.job_id, "kind": job.kind,
                        "payload": job.payload, "max_attempts": job.max_attempts,
                        "at": job.enqueued_at,
                    }))
                    if job.attempts:
                        handle.write(_frame({
                            "ev": "claim", "id": job.job_id, "attempts": job.attempts,
                        }))
                    if job.state == DONE:
                        handle.write(_frame({
                            "ev": "done", "id": job.job_id, "result": job.result,
                            "at": job.finished_at or 0.0,
                        }))
                    elif job.state == DEAD:
                        handle.write(_frame({
                            "ev": "dead", "id": job.job_id, "error": job.error,
                            "at": job.finished_at or 0.0,
                        }))
                    elif job.state == PENDING and job.attempts:
                        handle.write(_frame({
                            "ev": "fail", "id": job.job_id, "error": job.error,
                            "retry_at": job.not_before,
                        }))
                handle.flush()
                fsio.fsync_handle(handle)
            self._handle.close()
            fsio.replace(tmp, self.path)
            _fsync_dir(self.path.parent)
            self._handle = self.path.open("a", encoding="utf-8")

    def forget_finished(self) -> int:
        """Drop DONE/DEAD jobs from memory, then compact; returns dropped."""
        with self._cond:
            doomed = [jid for jid, j in self._jobs.items() if j.state in (DONE, DEAD)]
            for jid in doomed:
                del self._jobs[jid]
        self.compact()
        return len(doomed)

    # -- producer API --------------------------------------------------------------

    def submit(
        self,
        kind: str,
        payload: dict[str, Any] | None = None,
        max_attempts: int | None = None,
    ) -> Job:
        """Durably enqueue a job; it is recoverable once this returns."""
        with self._cond:
            if self._closed:
                raise JobError("queue is closed")
            job = Job(
                job_id=self._next_id,
                kind=kind,
                payload=dict(payload or {}),
                max_attempts=self.max_attempts if max_attempts is None else max_attempts,
                enqueued_at=self._clock.time(),
            )
            self._next_id += 1
            self._append({
                "ev": "enqueue", "id": job.job_id, "kind": job.kind,
                "payload": job.payload, "max_attempts": job.max_attempts,
                "at": job.enqueued_at,
            })
            self._jobs[job.job_id] = job
            self._clock.notify(self._cond)
            return job

    # -- consumer API --------------------------------------------------------------

    def _next_ready(self, now: float) -> Job | None:
        best: Job | None = None
        for job in self._jobs.values():
            if job.state != PENDING or job.not_before > now:
                continue
            if best is None or job.job_id < best.job_id:
                best = job
        return best

    def claim(self, timeout: float | None = None) -> Job | None:
        """Pop the oldest ready job (FIFO by id), blocking until one exists.

        Returns ``None`` on timeout or once the queue is closed and no job
        is ready. Claiming spends an attempt and journals the transition,
        so a claim is visible to crash recovery immediately.
        """
        self._clock.tick("queue.claim")
        deadline = None if timeout is None else self._clock.monotonic() + timeout
        with self._cond:
            while True:
                # A closed queue hands out nothing, even with ready PENDING
                # jobs — claiming would journal to a closed file. Those jobs
                # stay PENDING and run after the next open.
                if self._closed:
                    return None
                now = self._clock.time()
                job = self._next_ready(now)
                if job is not None:
                    # Journal first: if the append fails the job is still
                    # PENDING in memory, not half-claimed.
                    self._append({
                        "ev": "claim", "id": job.job_id, "attempts": job.attempts + 1,
                    })
                    job.state = RUNNING
                    job.attempts += 1
                    return job
                # Wake when notified, when the nearest backoff gate opens,
                # or at the caller's deadline — whichever comes first.
                waits = []
                if deadline is not None:
                    remaining = deadline - self._clock.monotonic()
                    if remaining <= 0:
                        return None
                    waits.append(remaining)
                gates = [
                    j.not_before - now
                    for j in self._jobs.values()
                    if j.state == PENDING and j.not_before > now
                ]
                if gates:
                    waits.append(max(0.0, min(gates)))
                self._clock.wait(self._cond, min(waits) if waits else None)

    def complete(self, job: Job, result: dict[str, Any] | None = None) -> None:
        """Mark a RUNNING job DONE (call after its effects are durable)."""
        self._clock.tick("queue.ack", str(job.job_id))
        with self._cond:
            self._expect(job, RUNNING)
            self._append({
                "ev": "done", "id": job.job_id, "result": result,
                "at": self._clock.time(),
            })
            job.state = DONE
            job.result = result
            job.finished_at = self._clock.time()
            self._clock.notify_all(self._cond)

    def fail(self, job: Job, error: str) -> str:
        """Record a failed attempt: re-queue with backoff, or dead-letter.

        Returns the job's new state (``pending`` or ``dead``).
        """
        self._clock.tick("queue.fail", str(job.job_id))
        with self._cond:
            self._expect(job, RUNNING)
            now = self._clock.time()
            if job.attempts >= job.max_attempts:
                self._append({
                    "ev": "dead", "id": job.job_id, "error": error, "at": now,
                })
                job.state = DEAD
                job.error = error
                job.finished_at = now
            else:
                delay = min(
                    self.backoff_cap,
                    self.backoff_base * (2 ** (job.attempts - 1)),
                )
                retry_at = now + delay
                self._append({
                    "ev": "fail", "id": job.job_id, "error": error,
                    "retry_at": retry_at,
                })
                job.state = PENDING
                job.error = error
                job.not_before = retry_at
            self._clock.notify_all(self._cond)
            return job.state

    def _expect(self, job: Job, state: str) -> None:
        live = self._jobs.get(job.job_id)
        if live is not job:
            raise JobError(f"job {job.job_id} is not tracked by this queue")
        if job.state != state:
            raise JobError(f"job {job.job_id} is {job.state}, expected {state}")

    # -- introspection -------------------------------------------------------------

    def get(self, job_id: int) -> Job:
        with self._cond:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise JobError(f"no such job {job_id}") from None

    def jobs(self, states: Iterable[str] | None = None) -> list[Job]:
        wanted = set(states) if states is not None else None
        with self._cond:
            return [
                job for job in sorted(self._jobs.values(), key=lambda j: j.job_id)
                if wanted is None or job.state in wanted
            ]

    def counts(self) -> dict[str, int]:
        out = dict.fromkeys(_STATES, 0)
        with self._cond:
            for job in self._jobs.values():
                out[job.state] += 1
        return out

    def depth(self) -> int:
        """Jobs still owed work (queue-depth metric)."""
        with self._cond:
            return sum(
                1 for j in self._jobs.values() if j.state in (PENDING, RUNNING)
            )

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no job is PENDING or RUNNING; False on timeout."""
        deadline = None if timeout is None else self._clock.monotonic() + timeout
        with self._cond:
            while any(
                j.state in (PENDING, RUNNING) for j in self._jobs.values()
            ):
                remaining = None
                if deadline is not None:
                    remaining = deadline - self._clock.monotonic()
                    if remaining <= 0:
                        return False
                self._clock.wait(self._cond, remaining)
            return True

    def close(self) -> None:
        """Stop accepting jobs and wake every blocked :meth:`claim`."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            self._handle.close()
            self._clock.notify_all(self._cond)

    @property
    def closed(self) -> bool:
        return self._closed
