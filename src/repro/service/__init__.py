"""The concurrent disguise service: locks, durable jobs, worker pool.

The paper casts the disguising tool as long-running infrastructure beside
the application. This package turns the single-threaded engine into that
service: table-granularity two-phase locking with deadlock detection
(:mod:`~repro.service.locks`), a durable retry/dead-letter job queue
(:mod:`~repro.service.queue`), a multi-worker executor with early lock
release into leader/follower group commit
(:mod:`~repro.service.executor`), and the submit/status/drain façade the
CLI exposes (:mod:`~repro.service.server`).
"""

from repro.service.executor import JOB_APPLY, JOB_EXPIRE, JOB_REVEAL, WorkerPool
from repro.service.locks import MODE_S, MODE_X, LockHook, LockManager, LockStats
from repro.service.queue import DEAD, DONE, PENDING, RUNNING, Job, JobQueue
from repro.service.server import DisguiseService, default_queue_path

__all__ = [
    "DisguiseService",
    "Job",
    "JobQueue",
    "JOB_APPLY",
    "JOB_EXPIRE",
    "JOB_REVEAL",
    "LockHook",
    "LockManager",
    "LockStats",
    "MODE_S",
    "MODE_X",
    "PENDING",
    "RUNNING",
    "DONE",
    "DEAD",
    "WorkerPool",
    "default_queue_path",
]
