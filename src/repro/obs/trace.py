"""Trace spans: nested timing of the disguise hot path.

A span brackets one operation — ``disguise.apply`` → ``op.modify`` →
``storage.update_where`` → ``wal.append`` / ``wal.fsync`` →
``vault.put_many`` → ``vault.encrypt`` — with wall time and per-span
attributes. Spans nest per thread: entering a span makes it the parent of
any span opened on the same thread before it exits, so a full apply
produces one tree from the engine call down to the WAL and vault leaves.

Tracing is **off by default** and the disabled path is near-zero cost:
instrumented code gates on ``TRACER.enabled`` (one attribute check) and
:func:`span` hands back a shared no-op context manager. The default
process tracer is module-level because one disguise crosses many objects
(engine → database → WAL → vault) that share no common handle; per-thread
span stacks keep concurrent service workers' trees separate.

The **slow-op log** captures the finished subtree of any statement or
disguise whose duration crosses ``TRACER.slow_threshold_s`` — the
observability answer to "which disguise blew its budget, and where did
the time go".
"""

from __future__ import annotations

import functools
import json
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterable

__all__ = [
    "Span",
    "SlowOp",
    "Tracer",
    "TRACER",
    "span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "render_spans",
    "spans_to_jsonl",
]

# Span names the slow-op log considers "operations" (statements and whole
# disguises). Leaf spans like one wal.fsync are visible *inside* a slow
# operation's tree but do not open slow-log records of their own.
_SLOW_PREFIXES = ("storage.", "disguise.", "service.")


class Span:
    """One timed operation; forms a tree via per-thread nesting."""

    __slots__ = ("name", "attrs", "children", "parent", "start_s", "duration_s")

    def __init__(self, name: str, attrs: dict[str, Any], parent: "Span | None") -> None:
        self.name = name
        self.attrs = attrs
        self.children: list[Span] = []
        self.parent = parent
        self.start_s = time.perf_counter()
        self.duration_s = 0.0

    def set(self, key: str, value: Any) -> None:
        """Attach (or overwrite) one attribute."""
        self.attrs[key] = value

    __setitem__ = set

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]

    def walk(self) -> Iterable["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """First descendant (or self) with the given span name."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def render(self, indent: str = "") -> str:
        return render_spans([self]) if not indent else _render_one(self, indent)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.duration_s * 1e3:.3f}ms, {self.attrs!r})"


class _NullSpan:
    """Shared do-nothing span handed out while tracing is disabled."""

    __slots__ = ()
    name = ""
    attrs: dict[str, Any] = {}
    children: list[Span] = []
    parent = None
    duration_s = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    __setitem__ = set


NULL_SPAN = _NullSpan()


@dataclass
class SlowOp:
    """One over-budget operation captured by the slow-op log."""

    name: str
    duration_s: float
    threshold_s: float
    root: Span

    def render(self) -> str:
        return (
            f"SLOW {self.name}: {self.duration_s * 1e3:.3f}ms "
            f"(budget {self.threshold_s * 1e3:.3f}ms)\n"
            + render_spans([self.root])
        )


class _SpanHandle:
    """Context manager that pushes/pops one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._finish(self._span)
        return False


class Tracer:
    """Collects span trees; owns the slow-op log.

    ``keep`` bounds how many finished *root* trees are retained (oldest
    dropped) so a long-running service cannot grow without bound; the
    slow-op log is bounded the same way.
    """

    def __init__(self, keep: int = 256, slow_keep: int = 64) -> None:
        self.enabled = False
        self.slow_threshold_s: float | None = None
        self._tls = threading.local()
        self._mu = threading.Lock()
        self._finished: deque[Span] = deque(maxlen=keep)
        self.slow_ops: deque[SlowOp] = deque(maxlen=slow_keep)

    # -- lifecycle ---------------------------------------------------------------

    def enable(self, slow_threshold_s: float | None = None) -> "Tracer":
        """Start recording spans (optionally with a slow-op budget)."""
        self.slow_threshold_s = slow_threshold_s
        self.enabled = True
        return self

    def disable(self) -> "Tracer":
        self.enabled = False
        self.slow_threshold_s = None
        return self

    def clear(self) -> None:
        with self._mu:
            self._finished.clear()
            self.slow_ops.clear()

    # -- recording ---------------------------------------------------------------

    def span(self, name: str, **attrs: Any):
        """Open a span as a context manager; no-op while disabled.

        The ``with`` target is the live :class:`Span` — set attributes on
        it as the operation learns them (``sp.set("rows", n)``).
        """
        if not self.enabled:
            return NULL_SPAN
        stack = self._stack()
        parent = stack[-1] if stack else None
        sp = Span(name, attrs, parent)
        stack.append(sp)
        return _SpanHandle(self, sp)

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack(self) -> list[Span]:
        try:
            return self._tls.stack
        except AttributeError:
            stack = self._tls.stack = []
            return stack

    def _finish(self, sp: Span) -> None:
        sp.duration_s = time.perf_counter() - sp.start_s
        stack = self._stack()
        # Pop defensively: an enable()/disable() race mid-operation can
        # leave the stack short; never pop someone else's span.
        if stack and stack[-1] is sp:
            stack.pop()
        if sp.parent is not None:
            sp.parent.children.append(sp)
        else:
            with self._mu:
                self._finished.append(sp)
        threshold = self.slow_threshold_s
        if (
            threshold is not None
            and sp.duration_s >= threshold
            and (sp.parent is None or sp.name.startswith(_SLOW_PREFIXES))
        ):
            with self._mu:
                self.slow_ops.append(
                    SlowOp(sp.name, sp.duration_s, threshold, sp)
                )

    # -- reading -----------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Finished root spans, oldest first."""
        with self._mu:
            return list(self._finished)

    def take(self) -> list[Span]:
        """Finished root spans, clearing the retained buffer."""
        with self._mu:
            out = list(self._finished)
            self._finished.clear()
            return out

    def render(self) -> str:
        return render_spans(self.roots())

    def to_jsonl(self) -> str:
        return spans_to_jsonl(self.roots())


#: The process-default tracer every instrumented subsystem checks.
TRACER = Tracer()


def span(name: str, **attrs: Any):
    """Open a span on the default tracer (module-level convenience)."""
    return TRACER.span(name, **attrs)


def enable_tracing(slow_threshold_s: float | None = None) -> Tracer:
    """Enable the default tracer; returns it (cleared of old spans)."""
    TRACER.clear()
    return TRACER.enable(slow_threshold_s)


def disable_tracing() -> Tracer:
    return TRACER.disable()


def traced(name: str | None = None, **attrs: Any):
    """Decorator form: trace every call of the wrapped function."""

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        label = name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if not TRACER.enabled:
                return fn(*args, **kwargs)
            with TRACER.span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper

    return decorate


# -- export ------------------------------------------------------------------------


def _render_one(sp: Span, indent: str) -> str:
    attrs = ""
    if sp.attrs:
        attrs = " " + " ".join(f"{k}={v!r}" for k, v in sp.attrs.items())
    return f"{indent}{sp.name} {sp.duration_s * 1e3:.3f}ms{attrs}"


def render_spans(roots: Iterable[Span]) -> str:
    """An indented tree, one line per span."""
    lines: list[str] = []

    def visit(sp: Span, depth: int) -> None:
        lines.append(_render_one(sp, "  " * depth))
        for child in sp.children:
            visit(child, depth + 1)

    for root in roots:
        visit(root, 0)
    return "\n".join(lines)


def spans_to_jsonl(roots: Iterable[Span]) -> str:
    """One JSON object per span (depth-first), ids linking children to
    parents — loadable line-by-line into any trace viewer or dataframe."""
    lines: list[str] = []
    counter = [0]

    def visit(sp: Span, parent_id: int | None) -> None:
        span_id = counter[0]
        counter[0] += 1
        lines.append(
            json.dumps(
                {
                    "id": span_id,
                    "parent_id": parent_id,
                    "name": sp.name,
                    "start_s": round(sp.start_s, 9),
                    "duration_s": round(sp.duration_s, 9),
                    "attrs": _jsonable(sp.attrs),
                },
                sort_keys=True,
            )
        )
        for child in sp.children:
            visit(child, span_id)

    for root in roots:
        visit(root, None)
    return "\n".join(lines)


def _jsonable(attrs: dict[str, Any]) -> dict[str, Any]:
    out = {}
    for key, value in attrs.items():
        if isinstance(value, (str, int, float, bool)) or value is None:
            out[key] = value
        else:
            out[key] = repr(value)
    return out
