"""Metrics registry: counters, gauges, histograms under dotted names.

Before this layer, every subsystem grew its own ad-hoc counters —
``Database.stats`` (a :class:`~repro.storage.database.QueryStats`),
``Server.metrics()`` (a hand-built dict), the WAL's ``syncs`` /
``bytes_written`` attributes, the lock manager's ``LockStats``, and the
vault stores' ``VaultStats`` plus the file vault's fsync tallies. The
registry unifies them under one naming scheme without moving the hot-path
accumulation: subsystems keep bumping their plain attributes (free, as
ever) and register **gauges** that read those attributes lazily, so a
registry snapshot is always a view over live state, never a second copy
that can drift or double-count.

Naming scheme (stable, dotted, lowercase): ``<subsystem>.<metric>`` —
``storage.selects``, ``storage.rows_examined``, ``plancache.hits``,
``wal.fsyncs``, ``vault.journal_appends``, ``service.lock_wait_s``.
Histogram snapshots expand to ``<name>.count`` / ``.sum`` / ``.p50`` /
``.p95`` / ``.p99``.

Thread-safety: every instrument takes a narrow per-instrument lock on
mutation; gauge callbacks read attributes that their owners already
guard (or that are advisory by design, like plan-cache hit counts).
Disabled registries make :meth:`Counter.inc` / :meth:`Histogram.observe`
no-ops after a single attribute check — near-zero cost.
"""

from __future__ import annotations

import threading
import warnings
from typing import Any, Callable, Iterable, Mapping

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsView",
    "Registry",
]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "_registry", "_value", "_mu")

    def __init__(self, name: str, registry: "Registry") -> None:
        self.name = name
        self._registry = registry
        self._value = 0
        self._mu = threading.Lock()

    def inc(self, n: int = 1) -> None:
        if not self._registry.enabled:
            return
        with self._mu:
            self._value += n

    @property
    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._mu:
            self._value = 0

    def read(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value: either set explicitly or read via callback.

    Callback gauges are how existing ad-hoc counters resolve through the
    registry: ``reg.gauge("wal.fsyncs", lambda: wal.syncs)`` reads the
    WAL's own attribute at snapshot time — the write path pays nothing.
    A callback that raises (its owner was closed or replaced) reads as
    ``None`` rather than poisoning the whole snapshot.
    """

    __slots__ = ("name", "_fn", "_value", "_mu")

    def __init__(
        self, name: str, fn: Callable[[], Any] | None = None
    ) -> None:
        self.name = name
        self._fn = fn
        self._value: Any = 0
        self._mu = threading.Lock()

    def set(self, value: Any) -> None:
        with self._mu:
            self._fn = None
            self._value = value

    def set_fn(self, fn: Callable[[], Any]) -> None:
        with self._mu:
            self._fn = fn

    def read(self) -> Any:
        fn = self._fn
        if fn is None:
            return self._value
        try:
            return fn()
        except Exception:
            return None


class Histogram:
    """Recent-observation histogram with p50/p95/p99.

    Keeps a bounded ring of the last *window* observations (plus exact
    ``count`` and ``sum`` over all of them); percentiles are computed over
    the ring on read. Observing on a disabled registry is a no-op after
    one attribute check.
    """

    __slots__ = ("name", "_registry", "_ring", "_size", "_next", "count", "sum", "_mu")

    def __init__(self, name: str, registry: "Registry", window: int = 1024) -> None:
        self.name = name
        self._registry = registry
        self._ring: list[float] = [0.0] * max(1, window)
        self._size = 0       # live observations in the ring
        self._next = 0       # ring write cursor
        self.count = 0
        self.sum = 0.0
        self._mu = threading.Lock()

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._mu:
            ring = self._ring
            ring[self._next] = value
            self._next = (self._next + 1) % len(ring)
            if self._size < len(ring):
                self._size += 1
            self.count += 1
            self.sum += value

    def percentile(self, p: float) -> float:
        """The *p*-th percentile (0..100) of the retained window."""
        with self._mu:
            window = sorted(self._ring[: self._size])
        if not window:
            return 0.0
        rank = max(0, min(len(window) - 1, int(round((p / 100.0) * (len(window) - 1)))))
        return window[rank]

    def read(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class MetricsView(dict):
    """A snapshot of registry values, with deprecated legacy-key access.

    Iteration, ``keys()``, and JSON serialization expose only the new
    dotted names. Indexing with a **legacy** key (an old ad-hoc dict key
    like ``jobs_done`` or a ``QueryStats`` field like ``selects``) still
    resolves — through the registry value it now aliases — but emits a
    :class:`DeprecationWarning` naming the replacement.
    """

    def __init__(
        self,
        data: Mapping[str, Any],
        aliases: Mapping[str, str] | None = None,
    ) -> None:
        super().__init__(data)
        self._aliases = dict(aliases or {})

    def __getitem__(self, key: str) -> Any:
        try:
            return super().__getitem__(key)
        except KeyError:
            if key in self._aliases:
                target = self._aliases[key]
                warnings.warn(
                    f"metrics key {key!r} is deprecated; read {target!r} "
                    f"from the registry view instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
                # Legacy dicts surfaced None for absent subsystems (e.g.
                # wal_syncs with no WAL attached); preserve that.
                return super().get(target)
            raise

    def get(self, key: str, default: Any = None) -> Any:
        try:
            return self[key]
        except KeyError:
            return default

    def legacy(self) -> dict[str, Any]:
        """New-name snapshot merged with its legacy aliases (no warning).

        For serialization boundaries that old consumers parse — the CLI's
        ``serve`` report keeps both schemas in its JSON via this.
        """
        merged = dict(self)
        for old, new in self._aliases.items():
            merged[old] = super().get(new)
        return merged


class Registry:
    """A named collection of :class:`Counter` / :class:`Gauge` /
    :class:`Histogram` instruments.

    ``get-or-create`` semantics: asking for an existing name returns the
    existing instrument (re-registering a gauge callback replaces the
    callback — hooks that detach and re-attach stay current). Every
    :class:`~repro.storage.database.Database` owns one registry
    (``db.obs``); subsystems attached to that database register into it.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._metrics: dict[str, Any] = {}
        self._aliases: dict[str, str] = {}
        self._mu = threading.Lock()

    # -- lifecycle ---------------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    # -- registration ------------------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._mu:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Counter(name, self)
            elif not isinstance(metric, Counter):
                raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
            return metric

    def gauge(self, name: str, fn: Callable[[], Any] | None = None) -> Gauge:
        with self._mu:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Gauge(name, fn)
            elif isinstance(metric, Gauge):
                if fn is not None:
                    metric.set_fn(fn)
            else:
                raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
            return metric

    def histogram(self, name: str, window: int = 1024) -> Histogram:
        with self._mu:
            metric = self._metrics.get(name)
            if metric is None:
                metric = self._metrics[name] = Histogram(name, self, window)
            elif not isinstance(metric, Histogram):
                raise TypeError(f"metric {name!r} is a {type(metric).__name__}")
            return metric

    def unregister(self, name: str) -> None:
        with self._mu:
            self._metrics.pop(name, None)

    def register_aliases(self, aliases: Mapping[str, str]) -> None:
        """Record legacy-name aliases with the registry itself.

        Subsystems call this when they register their gauges, so every
        view taken afterwards — including ``metrics --legacy`` with no
        server running — resolves the aliases regardless of which caller
        materialized the view first (previously a view only knew the
        aliases its own call site passed in).
        """
        with self._mu:
            self._aliases.update(aliases)

    # -- reading -----------------------------------------------------------------

    def get(self, name: str) -> Any:
        return self._metrics.get(name)

    def names(self, prefix: str | Iterable[str] | None = None) -> list[str]:
        return sorted(
            name for name in self._metrics if _match_prefix(name, prefix)
        )

    def snapshot(self, prefix: str | Iterable[str] | None = None) -> dict[str, Any]:
        """Flat ``{dotted name: value}`` of every (matching) instrument.

        Histograms expand into ``.count`` / ``.sum`` / ``.p50`` / ``.p95``
        / ``.p99`` sub-keys.
        """
        with self._mu:
            items = sorted(self._metrics.items())
        out: dict[str, Any] = {}
        for name, metric in items:
            if not _match_prefix(name, prefix):
                continue
            value = metric.read()
            if isinstance(metric, Histogram):
                for sub, sub_value in value.items():
                    out[f"{name}.{sub}"] = sub_value
            else:
                out[name] = value
        return out

    def view(
        self,
        prefix: str | Iterable[str] | None = None,
        aliases: Mapping[str, str] | None = None,
    ) -> MetricsView:
        """A :class:`MetricsView` snapshot (optionally prefix-filtered).

        Aliases registered on the registry (``register_aliases``) are
        merged with any call-site *aliases*; the call site wins on
        conflict. A prefix-restricted view only carries aliases whose
        target falls under the prefix — the service view should not grow
        ``statements: null`` because the *database* registered a
        ``storage.*`` alias — while an in-prefix alias with no live
        instrument still resolves to ``None`` (the legacy dicts surfaced
        ``wal_syncs: None`` when no WAL was attached).
        """
        with self._mu:
            merged = dict(self._aliases)
        if aliases:
            merged.update(aliases)
        if prefix is not None:
            merged = {
                old: new
                for old, new in merged.items()
                if _match_prefix(new, prefix)
            }
        return MetricsView(self.snapshot(prefix), merged)


def _match_prefix(name: str, prefix: str | Iterable[str] | None) -> bool:
    if prefix is None:
        return True
    prefixes = (prefix,) if isinstance(prefix, str) else tuple(prefix)
    return any(name == p or name.startswith(p + ".") for p in prefixes)
