"""Typed EXPLAIN reports.

:meth:`repro.storage.database.Database.explain` used to return a bare
dict; it now returns a :class:`PlanReport` — a dataclass that renders via
``str()`` and, with ``analyze=True``, carries the actual execution
numbers next to the estimates. Mapping-style access (``report["plan"]``)
is kept so existing callers compose unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Iterator

__all__ = ["PlanNode", "PlanReport"]


@dataclass
class PlanNode:
    """One executed plan stage (ANALYZE only): access probe or filter."""

    label: str
    rows: int
    time_s: float

    def __str__(self) -> str:
        return f"{self.label}: rows={self.rows} time={self.time_s * 1e3:.3f}ms"


@dataclass
class PlanReport:
    """What a scan would do — and, when analyzed, what it actually did.

    Planning fields are always present: ``plan`` (the access-path
    description), ``estimated_rows`` (the cost model's guess at rows
    examined), ``table_rows``, whether the predicate has a ``compiled``
    form, whether the plan was already ``cached``, and the plan-cache
    ``generation`` it is stamped with.

    ``analyze=True`` executes the plan and fills the actuals:
    ``actual_rows`` (rows matched), ``rows_examined`` (candidates
    tested — compare with the estimate to judge the cost model),
    ``cache_hit`` (whether execution reused the cached plan), per-node
    rows/wall time in ``nodes``, and total ``wall_time_s``.
    """

    table: str
    plan: str
    estimated_rows: float
    table_rows: int
    compiled: bool
    cached: bool
    generation: int
    analyzed: bool = False
    actual_rows: int | None = None
    rows_examined: int | None = None
    cache_hit: bool | None = None
    wall_time_s: float | None = None
    nodes: list[PlanNode] = field(default_factory=list)

    # -- mapping-style access (back-compat with the PR 5 dict reports) ----------

    def __getitem__(self, key: str) -> Any:
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def get(self, key: str, default: Any = None) -> Any:
        return getattr(self, key, default)

    def keys(self) -> list[str]:
        return [f.name for f in fields(self)]

    def items(self) -> list[tuple[str, Any]]:
        return [(name, getattr(self, name)) for name in self.keys()]

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and any(f.name == key for f in fields(self))

    def to_dict(self) -> dict[str, Any]:
        out = dict(self.items())
        out["nodes"] = [
            {"label": n.label, "rows": n.rows, "time_s": n.time_s}
            for n in self.nodes
        ]
        return out

    # -- rendering ---------------------------------------------------------------

    def __str__(self) -> str:
        lines = [
            f"EXPLAIN{' ANALYZE' if self.analyzed else ''} {self.table}",
            f"  plan: {self.plan}"
            + (" [cached]" if self.cached else "")
            + (" [compiled]" if self.compiled else ""),
            f"  estimated rows: {self.estimated_rows:g} of {self.table_rows}",
        ]
        if self.analyzed:
            lines.append(
                f"  actual: {self.actual_rows} row(s), "
                f"{self.rows_examined} examined, "
                f"cache {'hit' if self.cache_hit else 'miss'}, "
                f"{(self.wall_time_s or 0.0) * 1e3:.3f}ms"
            )
            for node in self.nodes:
                lines.append(f"    {node}")
        return "\n".join(lines)
