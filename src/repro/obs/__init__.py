"""repro.obs — the unified observability layer.

One public surface for everything the engine can tell you about itself:

* :class:`Registry` — counters, gauges, histograms under stable dotted
  names (``storage.selects``, ``wal.fsyncs``, ``plancache.hits``,
  ``vault.journal_appends``, ``service.lock_wait_s``, ...). Every
  :class:`~repro.storage.database.Database` owns one as ``db.obs``;
  subsystems attached to the database register into it, and
  ``Database.metrics()`` / ``DisguiseService.metrics()`` return
  :class:`MetricsView` snapshots of it.
* :func:`span` / :func:`traced` / :data:`TRACER` — trace spans with
  parent/child nesting through the hot path (apply → op → statement →
  WAL append/fsync → vault encrypt/put), exportable as a rendered tree
  (:func:`render_spans`) or JSONL (:func:`spans_to_jsonl`). Off by
  default; :func:`enable_tracing` turns it on, optionally with a slow-op
  budget that logs the span tree of any statement or disguise over it.
* :class:`PlanReport` — the typed report ``Database.explain`` returns,
  including actual row counts and per-node timings with ``analyze=True``.

The legacy surfaces (``Database.stats``, the old ``Server.metrics()``
keys) keep working through deprecation shims that resolve via the
registry and emit :class:`DeprecationWarning`.
"""

from repro.obs.registry import Counter, Gauge, Histogram, MetricsView, Registry
from repro.obs.report import PlanNode, PlanReport
from repro.obs.trace import (
    NULL_SPAN,
    SlowOp,
    Span,
    TRACER,
    Tracer,
    disable_tracing,
    enable_tracing,
    render_spans,
    span,
    spans_to_jsonl,
    traced,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsView",
    "Registry",
    "PlanNode",
    "PlanReport",
    "Span",
    "SlowOp",
    "Tracer",
    "TRACER",
    "NULL_SPAN",
    "span",
    "traced",
    "enable_tracing",
    "disable_tracing",
    "render_spans",
    "spans_to_jsonl",
]
