"""A6 — reveal cost: plain, chained, and global.

The paper measures apply-side composition; this ablation prices the other
direction (§4.2 "Reverting disguises"): a plain reveal, a reveal under a
later conflicting disguise (chain unwinding + interval re-application),
and the full reversal of a global ConfAnon.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro import Disguiser
from repro.apps.hotcrp import HotcrpPopulation, all_disguises, generate_hotcrp

POPULATION = HotcrpPopulation(users=108, pc_members=8, papers=112, reviews=350)


def build():
    db = generate_hotcrp(population=POPULATION, seed=29)
    engine = Disguiser(db, seed=4)
    for spec in all_disguises():
        engine.register(spec)
    return db, engine


def plain_reveal():
    db, engine = build()
    report = engine.apply("HotCRP-GDPR+", uid=2)
    return engine.reveal(report.disguise_id)


def chained_reveal():
    db, engine = build()
    scrub = engine.apply("HotCRP-GDPR+", uid=2)
    engine.apply("HotCRP-ConfAnon")
    return engine.reveal(scrub.disguise_id)


def global_reveal():
    db, engine = build()
    anon = engine.apply("HotCRP-ConfAnon")
    return engine.reveal(anon.disguise_id)


CASES = {
    "plain": plain_reveal,
    "chained": chained_reveal,
    "global-confanon": global_reveal,
}


@pytest.mark.parametrize("case", list(CASES))
def bench_reveal(benchmark, case):
    report = benchmark.pedantic(CASES[case], rounds=3, iterations=1)
    print_table(
        f"A6: reveal cost — {case}",
        ["ms", "db stmts", "reinserted", "fks restored", "chain reapplied", "spec reapplied"],
        [
            [
                f"{report.duration_s * 1e3:.1f}",
                report.db_stats.total,
                report.rows_reinserted,
                report.fks_restored,
                report.chain_reapplied,
                report.spec_reapplied,
            ]
        ],
    )
    assert report.entries_consumed > 0


def bench_reveal_shape(benchmark):
    """Chained reveal costs more than plain (chain work is real); a global
    reveal dwarfs both (it touches the whole conference)."""
    plain = plain_reveal()
    chained = chained_reveal()
    global_ = global_reveal()
    benchmark.pedantic(plain_reveal, rounds=3, iterations=1)
    print_table(
        "A6 summary",
        ["case", "ms", "db stmts"],
        [
            ["plain", f"{plain.duration_s * 1e3:.1f}", plain.db_stats.total],
            ["chained", f"{chained.duration_s * 1e3:.1f}", chained.db_stats.total],
            ["global-confanon", f"{global_.duration_s * 1e3:.1f}", global_.db_stats.total],
        ],
    )
    assert chained.db_stats.total > plain.db_stats.total
    assert global_.db_stats.total > chained.db_stats.total
    assert chained.chain_reapplied + chained.spec_reapplied > 0
