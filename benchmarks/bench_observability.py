"""O — observability overhead: disabled cost, tracing cost, span throughput.

Three claims from the unified observability layer (ISSUE 8):

* **Disabled overhead** — with tracing off (the default), the instrumented
  write path (``_statement`` spans, registry gauges, diagnostics mutexes)
  must cost <=5% over the undecorated seed path
  (``Database.update_where.__wrapped__``) on the batched-UPDATE benchmark.
* **Enabled overhead** — full tracing (statement spans + latency
  histogram) stays a bounded constant per *statement*; batched statements
  amortize it, so the traced write path must stay within 1.5x of
  disabled mode at the 10k-row scale.
* **Span throughput** — opening and closing a traced span (enabled, with
  one attribute) must sustain >=100k spans/s; the disabled path hands out
  a shared null span and must sustain >=1M/s.

Run under pytest for the benchmark fixtures, or directly
(``python benchmarks/bench_observability.py [--smoke]``) to emit
``BENCH_obs.json`` for CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import random
import time

from conftest import print_line, print_table

from repro import Database, Schema, parse_schema
from repro.obs import TRACER, Tracer, disable_tracing, enable_tracing

EVENTS_DDL = """
CREATE TABLE events (
  id INT PRIMARY KEY,
  uid INT,
  kind TEXT,
  score INT,
  title TEXT,
  body TEXT,
  note TEXT
);
"""

FULL_SCALES = (10_000, 50_000)
SMOKE_SCALES = (2_000, 10_000)

DISABLED_OVERHEAD_CEILING = 1.05  # <=5% over the undecorated seed path
ENABLED_OVERHEAD_CEILING = 1.5
ENABLED_SPANS_PER_S_FLOOR = 100_000
DISABLED_SPANS_PER_S_FLOOR = 1_000_000

_CHUNK = "lorem ipsum dolor sit amet, consectetur adipiscing elit "


def make_rows(n: int, seed: int = 11) -> list[dict]:
    rng = random.Random(seed)
    return [
        {
            "id": i,
            "uid": i % 100,
            "kind": rng.choice(["click", "view", "purchase"]),
            "score": rng.randrange(10_000),
            "title": f"event {i} in stream {i % 7}",
            "body": _CHUNK * 2,
            "note": _CHUNK,
        }
        for i in range(n)
    ]


def _best(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def make_db(n: int) -> Database:
    db = Database(Schema(parse_schema(EVENTS_DDL)))
    db.insert_many("events", make_rows(n))
    db.table("events").create_index("uid")
    return db


# -- Part 1: write path — seed vs instrumented vs traced ---------------------------


def write_path_overhead_at(n: int) -> dict:
    """Batched UPDATE over every row: undecorated seed, disabled, traced."""
    flip = [0]

    def batched_update(db, call):
        flip[0] ^= 1
        call(db, "events", "score >= 0", {"kind": f"k{flip[0]}"})

    undecorated = Database.update_where.__wrapped__
    decorated = Database.update_where

    seed_db = make_db(n)
    disabled_db = make_db(n)
    traced_db = make_db(n)
    for db in (seed_db, disabled_db, traced_db):
        batched_update(db, undecorated if db is seed_db else decorated)

    # Interleave the three variants so clock drift and cache state hit all
    # of them equally; an overhead ratio near 1.0 is far noisier than the
    # individual timings, so ordering bias would dominate the signal.
    secs_seed = secs_disabled = secs_traced = float("inf")
    for _ in range(15):
        start = time.perf_counter()
        batched_update(seed_db, undecorated)
        secs_seed = min(secs_seed, time.perf_counter() - start)

        start = time.perf_counter()
        batched_update(disabled_db, decorated)
        secs_disabled = min(secs_disabled, time.perf_counter() - start)

        enable_tracing()
        try:
            start = time.perf_counter()
            batched_update(traced_db, decorated)
            secs_traced = min(secs_traced, time.perf_counter() - start)
        finally:
            disable_tracing()

    return {
        "n_rows": n,
        "seed_rows_per_s": n / secs_seed,
        "disabled_rows_per_s": n / secs_disabled,
        "traced_rows_per_s": n / secs_traced,
        "disabled_overhead": secs_disabled / secs_seed,
        "traced_overhead": secs_traced / secs_disabled,
    }


# -- Part 2: span open/close throughput --------------------------------------------


def span_throughput_results(spans: int = 100_000) -> dict:
    tracer = Tracer(keep=8)

    def disabled_loop():
        for _ in range(spans):
            with tracer.span("bench.noop"):
                pass

    secs_disabled = _best(disabled_loop, repeats=3)

    tracer.enable()

    def enabled_loop():
        with tracer.span("bench.root"):
            for _ in range(spans):
                with tracer.span("bench.noop", i=1):
                    pass
        tracer.take()

    secs_enabled = _best(enabled_loop, repeats=3)
    tracer.disable()

    return {
        "spans": spans,
        "disabled_spans_per_s": spans / secs_disabled,
        "enabled_spans_per_s": spans / secs_enabled,
    }


# -- Checks (shared by pytest and smoke mode) --------------------------------------


def check_write_path(results: list[dict]) -> None:
    top = results[-1]
    assert top["disabled_overhead"] <= DISABLED_OVERHEAD_CEILING, (
        f"disabled-mode instrumentation costs {top['disabled_overhead']:.3f}x "
        f"the seed path at {top['n_rows']} rows"
    )
    assert top["traced_overhead"] <= ENABLED_OVERHEAD_CEILING, (
        f"tracing costs {top['traced_overhead']:.3f}x disabled mode at "
        f"{top['n_rows']} rows"
    )


def check_span_throughput(result: dict) -> None:
    assert result["enabled_spans_per_s"] >= ENABLED_SPANS_PER_S_FLOOR, (
        f"enabled spans at {result['enabled_spans_per_s']:,.0f}/s"
    )
    assert result["disabled_spans_per_s"] >= DISABLED_SPANS_PER_S_FLOOR, (
        f"disabled spans at {result['disabled_spans_per_s']:,.0f}/s"
    )


# -- pytest benchmark entry points -------------------------------------------------


def bench_disabled_write_path_overhead(benchmark):
    """Instrumentation off: <=5% over the undecorated seed write path."""
    assert not TRACER.enabled
    results = [write_path_overhead_at(n) for n in SMOKE_SCALES]
    db = make_db(SMOKE_SCALES[0])
    flip = [0]

    def statement():
        flip[0] ^= 1
        db.update_where("events", "score >= 0", {"kind": f"k{flip[0]}"})

    benchmark.pedantic(statement, rounds=5, iterations=1)
    print_table(
        "O1: write path — seed vs instrumented (disabled) vs traced",
        ["rows", "seed rows/s", "disabled rows/s", "traced rows/s",
         "disabled ovh", "traced ovh"],
        [
            [
                r["n_rows"],
                f"{r['seed_rows_per_s']:,.0f}",
                f"{r['disabled_rows_per_s']:,.0f}",
                f"{r['traced_rows_per_s']:,.0f}",
                f"{r['disabled_overhead']:.3f}x",
                f"{r['traced_overhead']:.3f}x",
            ]
            for r in results
        ],
    )
    check_write_path(results)


def bench_span_throughput(benchmark):
    """Span open/close: >=100k/s enabled, >=1M/s disabled."""
    result = span_throughput_results()
    tracer = Tracer(keep=8).enable()

    def burst():
        with tracer.span("bench.root"):
            for _ in range(1_000):
                with tracer.span("bench.noop"):
                    pass
        tracer.take()

    benchmark.pedantic(burst, rounds=5, iterations=1)
    tracer.disable()
    print_line(
        f"O2: spans {result['disabled_spans_per_s']:,.0f}/s disabled, "
        f"{result['enabled_spans_per_s']:,.0f}/s enabled"
    )
    check_span_throughput(result)


# -- CI smoke mode -----------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced scales for CI (10k rows instead of 50k)",
    )
    args = parser.parse_args()
    scales = SMOKE_SCALES if args.smoke else FULL_SCALES
    spans = 50_000 if args.smoke else 100_000
    payload = {
        "smoke": args.smoke,
        "write_path": [write_path_overhead_at(n) for n in scales],
        "span_throughput": span_throughput_results(spans),
    }
    check_write_path(payload["write_path"])
    check_span_throughput(payload["span_throughput"])
    with open("BENCH_obs.json", "w") as fh:
        json.dump(payload, fh, indent=2)
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
