"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index). Benchmarks print the rows/series the
paper reports and check the *shape* — orderings and rough factors — not
absolute numbers (the substrate is a pure-Python engine, not the authors'
Rust + MySQL testbed).
"""

from __future__ import annotations

from repro import Disguiser
from repro.apps.hotcrp import HotcrpPopulation, all_disguises, generate_hotcrp

PAPER_POPULATION = HotcrpPopulation(users=430, pc_members=30, papers=450, reviews=1400)


def paper_conference(seed: int = 42) -> tuple:
    """The §6 testbed: 430 users (30 PC), 450 papers, 1400 reviews."""
    db = generate_hotcrp(population=PAPER_POPULATION, seed=seed)
    engine = Disguiser(db, seed=1)
    for spec in all_disguises():
        engine.register(spec)
    return db, engine


def conference_at(scale: float, seed: int = 42) -> tuple:
    db = generate_hotcrp(population=HotcrpPopulation.at_scale(scale), seed=seed)
    engine = Disguiser(db, seed=1)
    for spec in all_disguises():
        engine.register(spec)
    return db, engine


import pytest

_capture_manager = None


@pytest.fixture(autouse=True)
def _grab_capture_manager(request):
    """Remember pytest's capture manager so :func:`print_table` can emit the
    regenerated paper tables even in a plain (non ``-s``) benchmark run —
    that is what lands in bench_output.txt."""
    global _capture_manager
    _capture_manager = request.config.pluginmanager.getplugin("capturemanager")
    yield


def _emit(lines: list[str]) -> None:
    def write() -> None:
        for line in lines:
            print(line)

    if _capture_manager is not None:
        with _capture_manager.global_and_fixture_disabled():
            write()
    else:
        write()


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a small aligned table, visible in captured benchmark runs."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    out = ["", f"== {title} ==", line, "-" * len(line)]
    for row in rows:
        out.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    _emit(out)


def print_line(text: str) -> None:
    """One uncaptured output line (fit summaries etc.)."""
    _emit([text])
