"""A1 — vault deployment models: cost of apply + reveal per backend.

The paper sketches several deployments (§4.2): database tables (Edna's
choice), offline storage, per-user encrypted vaults, and a two-tier mix.
This ablation measures one PC member's GDPR+ apply followed by its reveal
under each backend, at a quarter-scale conference.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro import Database, Disguiser
from repro.apps.hotcrp import HotcrpPopulation, all_disguises, generate_hotcrp
from repro.vault import (
    EncryptedVault,
    FileVault,
    MemoryVault,
    MultiTierVault,
    TableVault,
)

POPULATION = HotcrpPopulation(users=108, pc_members=8, papers=112, reviews=350)


def make_vault(kind: str, tmp_path):
    if kind == "memory":
        return MemoryVault(), None
    if kind == "table":
        return TableVault(Database()), None
    if kind == "file":
        return FileVault(tmp_path / "vaults"), None
    if kind == "encrypted":
        vault = EncryptedVault(MemoryVault())
        key = vault.register_owner(2)
        vault.unlock(2, key)
        return vault, None
    if kind == "multitier":
        return MultiTierVault(MemoryVault(), MemoryVault()), None
    raise AssertionError(kind)


def apply_and_reveal(kind: str, tmp_path):
    db = generate_hotcrp(population=POPULATION, seed=31)
    vault, _ = make_vault(kind, tmp_path)
    engine = Disguiser(db, vault=vault, seed=2)
    for spec in all_disguises():
        engine.register(spec)
    apply_report = engine.apply("HotCRP-GDPR+", uid=2)
    reveal_report = engine.reveal(apply_report.disguise_id)
    return apply_report, reveal_report


KINDS = ("memory", "table", "file", "encrypted", "multitier")


@pytest.mark.parametrize("kind", KINDS)
def bench_vault_backend(benchmark, kind, tmp_path):
    def target():
        return apply_and_reveal(kind, tmp_path)

    apply_report, reveal_report = benchmark.pedantic(target, rounds=3, iterations=1)
    print_table(
        f"A1: vault backend '{kind}'",
        ["phase", "ms", "db stmts", "vault ops"],
        [
            [
                "apply",
                f"{apply_report.duration_s * 1e3:.1f}",
                apply_report.db_stats.total,
                apply_report.vault_stats.total,
            ],
            [
                "reveal",
                f"{reveal_report.duration_s * 1e3:.1f}",
                reveal_report.db_stats.total,
                reveal_report.vault_stats.total,
            ],
        ],
    )
    # Every backend must produce the same logical outcome.
    assert apply_report.vault_entries_written > 0
    assert reveal_report.entries_consumed == apply_report.vault_entries_written
