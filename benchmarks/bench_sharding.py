"""SH — owner-hash sharded engine: parallel disguises and read confinement.

The sharded engine splits a database into N owner-hash shards, each with
its own storage engine, plan cache, write-ahead log, and vault store. An
owner-rooted disguise (every statement anchored ``owner = $UID``) runs
entirely on one shard, so the service prelocks only that shard's tables
and commits through only that shard's WAL. This benchmark measures both
halves of the claim:

* **Throughput** — GDPR scrub jobs/second at 1, 2, and 4 shards with a
  fixed worker pool. Four shards must clear >2.5x the jobs/second of
  one shard. Where the speedup honestly comes from: the engine is pure
  Python, so the GIL denies CPU *parallelism* — extra shards win by
  **work avoidance** (each owner-anchored statement scans one shard's
  ~1/N rows instead of the whole table) plus I/O overlap (jobs on
  different shards fsync disjoint WALs; ``sync_delay`` models a
  disk-class fsync as in ``bench_service_throughput``). To measure the
  scan-confinement claim rather than hash-index lookups, the benchmark
  drops the owner-column secondary indexes in EVERY configuration —
  this models anchored predicates without a dedicated index (the
  indexed case is ``bench_index_ablation``'s subject, and with an O(1)
  probe there is no scan for sharding to confine).
* **Confinement** — rows examined by owner-anchored reads, measured
  directly: with the ``comments.user_id`` index dropped in *both*
  engines, a monolithic scan examines every comment while the routed
  scan examines only the home shard's ~1/N. Four shards must examine
  <0.35x the rows of the monolith.

Run under pytest, or directly
(``python benchmarks/bench_sharding.py [--smoke]``) to emit
``BENCH_shard.json`` for CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from conftest import print_line, print_table

from repro import (
    Decorrelate,
    Default,
    DisguiseSpec,
    FakeName,
    Modify,
    Remove,
    TableDisguise,
    named_modifier,
)
from repro.apps.lobsters import LobstersPopulation, generate_lobsters
from repro.core.engine import Disguiser
from repro.shard import ShardGroupWal, ShardedDisguiseService, shard_database
from repro.shard.apply import spec_owner_rooted
from repro.storage.wal import WriteAheadLog
from repro.vault import MemoryVault

SHARD_COUNTS = (1, 2, 4)
WORKERS = 4
SYNC_DELAY_S = 0.005  # modeled disk-class fsync (see module docstring)
CONFINEMENT_SHARDS = 4
# The database holds SCALE users per disguise job, so each owner-anchored
# scan walks a large table while the per-job row footprint stays fixed —
# the regime where confinement (1/N-size scans) dominates the job cost.
# This mirrors production reality: disguise requests arrive from a tiny
# fraction of the user base, against tables sized by the whole base.
SCALE = 300
# Owner columns whose secondary indexes are dropped in every engine so
# anchored statements pay a scan (see module docstring).
OWNER_INDEXES = (
    ("stories", "user_id"),
    ("comments", "user_id"),
    ("votes", "user_id"),
    ("saved_stories", "user_id"),
    ("hidden_stories", "user_id"),
    ("read_ribbons", "user_id"),
    ("messages", "recipient_user_id"),
)


def rooted_gdpr() -> DisguiseSpec:
    """Lobsters GDPR scrub restricted to owner-anchored statements.

    The full ``lobsters_gdpr`` deletes the account row, which touches
    RESTRICT edges owned by *other* users (invitations, moderations) and
    therefore cannot be owner-rooted. This variant scrubs the account in
    place and confines every other table to rows anchored on the owner.
    """
    null_fn, null_label = named_modifier("null")
    anchored_remove = lambda: [Remove("user_id = $UID")]
    return DisguiseSpec(
        "Lobsters-GDPR-rooted",
        [
            TableDisguise(
                "users",
                transformations=[
                    Modify("id = $UID", column="email", fn=null_fn, label=null_label),
                    Modify("id = $UID", column="about", fn=null_fn, label=null_label),
                ],
                generate_placeholder={
                    "username": FakeName(),
                    "email": Default(None),
                    "is_admin": Default(False),
                    "karma": Default(0),
                },
            ),
            TableDisguise(
                "stories",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
            TableDisguise(
                "comments",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
            TableDisguise("votes", transformations=anchored_remove()),
            TableDisguise("saved_stories", transformations=anchored_remove()),
            TableDisguise("hidden_stories", transformations=anchored_remove()),
            TableDisguise("read_ribbons", transformations=anchored_remove()),
            TableDisguise(
                "messages",
                transformations=[Remove("recipient_user_id = $UID")],
            ),
        ],
    )


def run_at(n_shards: int, jobs: int, workdir: Path) -> dict:
    """Drain *jobs* rooted scrubs at *n_shards* shards; report rates."""
    users = SCALE * jobs
    population = LobstersPopulation(users=users, stories=2 * users, comments=5 * users)
    sdb = shard_database(generate_lobsters(population=population, seed=7), n_shards)
    for shard in sdb.shards:
        for table, column in OWNER_INDEXES:
            shard.table(table).drop_index(column)
    wals = [
        WriteAheadLog(
            workdir / f"n{n_shards}_s{index}.wal",
            fsync="always",
            sync_delay=SYNC_DELAY_S,
        )
        for index in range(n_shards)
    ]
    group = ShardGroupWal(wals)
    sdb.set_redo_hook(group)
    engine = Disguiser(sdb, vault=MemoryVault(), seed=3)
    spec = rooted_gdpr()
    assert spec_owner_rooted(spec, sdb.router), "benchmark spec must be rooted"
    engine.register(spec)
    uids = sorted(row["id"] for row in sdb.select("users"))[:jobs]
    service = ShardedDisguiseService(
        engine,
        workdir / f"queue_n{n_shards}.jobs",
        workers=WORKERS,
        wal=group,
        queue_fsync=False,
    )
    # Pre-fill the queue so the measurement is pure drain throughput.
    for uid in uids:
        service.submit_apply(spec.name, uid=uid)
    start = time.perf_counter()
    with service:
        drained = service.drain(timeout=600.0)
    wall = time.perf_counter() - start
    assert drained, f"drain timed out at {n_shards} shard(s)"
    metrics = service.metrics()
    assert metrics["service.jobs_done"] == len(uids)
    assert metrics["service.jobs_dead"] == 0
    assert sdb.check_integrity() == []
    assert all(sdb.get("users", uid)["email"] is None for uid in uids)
    syncs = sum(wal.syncs for wal in wals)
    group.close()
    return {
        "shards": n_shards,
        "jobs": len(uids),
        "jobs_per_s": len(uids) / wall,
        "wall_s": wall,
        "wal_syncs": syncs,
        "scatter_reads": sdb.scatter_reads,
        "routed_reads": sdb.routed_reads,
        "lock_waits": metrics["service.lock_waits"],
        "deadlocks": metrics["service.deadlocks"],
        "p50_latency_ms": metrics["service.job_p50_s"] * 1e3,
        "p99_latency_ms": metrics["service.job_p99_s"] * 1e3,
    }


def throughput_results(jobs: int, workdir: Path) -> list[dict]:
    results = []
    for n_shards in SHARD_COUNTS:
        results.append(run_at(n_shards, jobs, workdir))
    base = results[0]["jobs_per_s"]
    for row in results:
        row["speedup"] = row["jobs_per_s"] / base
    return results


def check_scaling(results: list[dict]) -> None:
    by = {r["shards"]: r for r in results}
    assert by[4]["speedup"] > 2.5, (
        f"4 shards reached only {by[4]['speedup']:.2f}x of 1 shard "
        f"(need >2.5x): per-shard WALs and locks are not decoupling the jobs"
    )
    for row in results:
        assert row["deadlocks"] == 0, f"unexpected deadlocks: {row}"


def confinement_results(users: int) -> dict:
    """Rows examined by owner-anchored comment reads, routed vs monolith.

    The secondary index on ``comments.user_id`` is dropped in BOTH
    engines so each read pays a scan, and what differs is only *how many
    rows* the scan walks: all of them, or one shard's share.
    """
    population = LobstersPopulation(users=users, stories=2 * users, comments=8 * users)
    plain = generate_lobsters(population=population, seed=7)
    sdb = shard_database(
        generate_lobsters(population=population, seed=7), CONFINEMENT_SHARDS
    )
    plain.table("comments").drop_index("user_id")
    for shard in sdb.shards:
        shard.table("comments").drop_index("user_id")

    def examined(engines) -> int:
        return sum(engine.table("comments").rows_examined for engine in engines)

    uids = sorted(row["id"] for row in plain.select("users"))
    before_plain = examined([plain])
    before_sharded = examined(sdb.shards)
    for uid in uids:
        rows_plain = plain.select("comments", "user_id = $U", params={"U": uid})
        rows_sharded = sdb.select("comments", "user_id = $U", params={"U": uid})
        assert len(rows_plain) == len(rows_sharded)
    plain_examined = examined([plain]) - before_plain
    sharded_examined = examined(sdb.shards) - before_sharded
    ratio = sharded_examined / plain_examined
    assert sdb.scatter_reads == 0, "owner-anchored reads must not scatter"
    assert ratio < 0.35, (
        f"routed reads examined {ratio:.2f}x the monolith's rows "
        f"(need <0.35x at {CONFINEMENT_SHARDS} shards): routing is not "
        f"confining the scans"
    )
    return {
        "shards": CONFINEMENT_SHARDS,
        "reads": len(uids),
        "rows_examined_monolith": plain_examined,
        "rows_examined_sharded": sharded_examined,
        "examined_ratio": ratio,
    }


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="smaller workload for CI"
    )
    parser.add_argument("--jobs", type=int, default=None, help="jobs per run")
    args = parser.parse_args()
    jobs = args.jobs if args.jobs is not None else (24 if args.smoke else 32)

    with tempfile.TemporaryDirectory(prefix="bench_shard_") as tmp:
        results = throughput_results(jobs, Path(tmp))

    print_table(
        f"sharded disguise throughput: rooted GDPR jobs/s by shard count "
        f"({jobs} jobs per run, {WORKERS} workers, modeled fsync "
        f"{SYNC_DELAY_S * 1e3:.0f} ms, per-shard WALs fsync='always')",
        ["shards", "jobs/s", "speedup", "scatter", "p50 ms", "p99 ms", "waits"],
        [
            [
                r["shards"],
                f"{r['jobs_per_s']:.1f}",
                f"{r['speedup']:.2f}x",
                r["scatter_reads"],
                f"{r['p50_latency_ms']:.1f}",
                f"{r['p99_latency_ms']:.1f}",
                r["lock_waits"],
            ]
            for r in results
        ],
    )
    check_scaling(results)
    print_line("scaling check passed: >2.5x at 4 shards, no deadlocks")

    confinement = confinement_results(users=256)
    print_line(
        f"read confinement: {confinement['rows_examined_sharded']} rows "
        f"examined sharded vs {confinement['rows_examined_monolith']} "
        f"monolithic = {confinement['examined_ratio']:.2f}x (<0.35x required)"
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_shard.json"
    out.write_text(
        json.dumps(
            {
                "benchmark": "sharding",
                "jobs_per_run": jobs,
                "workers": WORKERS,
                "sync_delay_s": SYNC_DELAY_S,
                "throughput": results,
                "confinement": confinement,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print_line(f"wrote {out}")


if __name__ == "__main__":
    main()
