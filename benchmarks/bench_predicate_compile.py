"""C — compiled read path: predicate closures and the keyed plan cache.

Two claims from the compiled-read-path work:

* **Compilation** — lowering a predicate AST to a flat Python closure
  removes the per-node/per-row interpreter dispatch: on an unplannable
  predicate over unindexed columns (so both sides pay a full scan and the
  comparison isolates per-row evaluation) the compiled form must filter
  >=3x more rows/s at the 100k-row scale.
* **Plan cache** — a warm (table, predicate, generation) cache entry skips
  parse, template extraction, and compilation entirely: warm SELECT
  latency must be >=5x below cold (caches cleared + generation bumped).

Run under pytest for the benchmark fixtures, or directly
(``python benchmarks/bench_predicate_compile.py [--smoke]``) to emit
``BENCH_compile.json`` for CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import random
import time

from conftest import print_line, print_table

from repro import Database, Schema, parse_schema
from repro.storage.compile import clear_compile_cache, compile_predicate
from repro.storage.sql import clear_parse_cache, parse_where

EVENTS_DDL = """
CREATE TABLE events (
  id INT PRIMARY KEY,
  uid INT,
  score INT NOT NULL,
  ratio REAL,
  title TEXT
);
"""

# Unplannable on purpose: arithmetic on the left of every comparison and a
# LIKE keep the planner out, so interpreted-vs-compiled differ only in how
# each row is *evaluated*, not in how many rows are examined.
WHERE = (
    "(score * 2 > $LO AND score - 1 < $HI AND title LIKE '%a%') "
    "OR (ratio >= 0.25 AND ratio <= 0.5 AND uid IN (1, 2, 3, NULL))"
)
PARAMS = {"LO": 40, "HI": 9_000}

FULL_SCALES = (10_000, 100_000)
SMOKE_SCALES = (2_000, 10_000)

COMPILED_SPEEDUP_FLOOR = 3.0
PLAN_CACHE_RATIO_FLOOR = 5.0


def make_rows(n: int, seed: int = 3) -> list[dict]:
    rng = random.Random(seed)
    return [
        {
            "id": i,
            "uid": rng.choice([None, *range(10)]),
            "score": rng.randrange(10_000),
            "ratio": rng.choice([None, rng.random()]),
            "title": rng.choice(["alpha", "beta", "gamma", "delta", None]),
        }
        for i in range(n)
    ]


def _best(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def throughput_at(n: int) -> dict:
    pred = parse_where(WHERE)
    rows = make_rows(n)

    def interpreted():
        return [row for row in rows if pred.test(row, PARAMS)]

    match = compile_predicate(pred).bind(PARAMS)

    def compiled():
        return [row for row in rows if match(row) is True]

    assert interpreted() == compiled(), "compiled form diverged"
    secs_interp = _best(interpreted)
    secs_compiled = _best(compiled)
    return {
        "n_rows": n,
        "selected": len(compiled()),
        "interpreted_rows_per_s": n / secs_interp,
        "compiled_rows_per_s": n / secs_compiled,
        "speedup": secs_interp / secs_compiled,
    }


# -- Part 2: plan-cache cold vs warm latency -------------------------------------


def plan_cache_db(n: int = 500) -> Database:
    db = Database(Schema(parse_schema(EVENTS_DDL)))
    db.insert_many("events", make_rows(n))
    db.table("events").create_index("score")
    return db


def plan_cache_results(samples: int = 200) -> dict:
    db = plan_cache_db()
    # Distinct WHERE texts so the parse cache cannot help the cold path;
    # clearing every cache layer + bumping the generation before each call
    # makes "cold" mean parse + template extraction + compile + store.
    cold_wheres = [f"score = {i} AND title LIKE 'a{i}%'" for i in range(samples)]
    for where in cold_wheres:
        db.select("events", where)  # pre-warm so timing excludes first-run jitter
    start = time.perf_counter()
    for where in cold_wheres:
        clear_parse_cache()
        clear_compile_cache()
        db.plans.bump()
        db.select("events", where)
    cold_us = (time.perf_counter() - start) / samples * 1e6

    warm_where = "score = 17 AND title LIKE 'a17%'"
    db.select("events", warm_where)  # populate the entry
    start = time.perf_counter()
    for _ in range(samples):
        db.select("events", warm_where)
    warm_us = (time.perf_counter() - start) / samples * 1e6
    return {
        "samples": samples,
        "cold_us": cold_us,
        "warm_us": warm_us,
        "ratio": cold_us / warm_us,
        "cache_hits": db.plans.hits,
        "cache_misses": db.plans.misses,
    }


# -- Checks (shared by pytest and smoke mode) ------------------------------------


def check_throughput(results: list[dict]) -> None:
    top = results[-1]
    assert top["speedup"] >= COMPILED_SPEEDUP_FLOOR, (
        f"compiled only {top['speedup']:.2f}x interpreted at {top['n_rows']} rows"
    )


def check_plan_cache(result: dict) -> None:
    assert result["ratio"] >= PLAN_CACHE_RATIO_FLOOR, (
        f"warm plan-cache SELECT only {result['ratio']:.1f}x faster than cold"
    )


# -- pytest benchmark entry points ------------------------------------------------


def bench_compiled_predicate_throughput(benchmark):
    """Compiled closures filter >=3x more rows/s than the interpreter."""
    results = [throughput_at(n) for n in FULL_SCALES]
    pred = parse_where(WHERE)
    rows = make_rows(FULL_SCALES[0])
    match = compile_predicate(pred).bind(PARAMS)
    benchmark.pedantic(
        lambda: [row for row in rows if match(row) is True],
        rounds=5,
        iterations=1,
    )
    print_table(
        "C1: interpreted vs compiled predicate evaluation",
        ["rows", "selected", "interp rows/s", "compiled rows/s", "speedup"],
        [
            [
                r["n_rows"],
                r["selected"],
                f"{r['interpreted_rows_per_s']:,.0f}",
                f"{r['compiled_rows_per_s']:,.0f}",
                f"{r['speedup']:.1f}x",
            ]
            for r in results
        ],
    )
    check_throughput(results)


def bench_plan_cache_cold_vs_warm(benchmark):
    """A warm plan-cache hit skips parse + plan + compile (>=5x)."""
    result = plan_cache_results()
    db = plan_cache_db()
    warm_where = "score = 17 AND title LIKE 'a17%'"
    db.select("events", warm_where)
    benchmark.pedantic(
        lambda: db.select("events", warm_where), rounds=5, iterations=10
    )
    print_line(
        f"C2: plan cache cold {result['cold_us']:.0f}us vs warm "
        f"{result['warm_us']:.0f}us per SELECT ({result['ratio']:.0f}x)"
    )
    check_plan_cache(result)


# -- CI smoke mode ---------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced scales for CI (10k rows instead of 100k)",
    )
    args = parser.parse_args()
    scales = SMOKE_SCALES if args.smoke else FULL_SCALES
    samples = 50 if args.smoke else 200
    payload = {
        "smoke": args.smoke,
        "where": WHERE,
        "full_scan": [throughput_at(n) for n in scales],
        "plan_cache": plan_cache_results(samples),
    }
    check_throughput(payload["full_scan"])
    check_plan_cache(payload["plan_cache"])
    with open("BENCH_compile.json", "w") as fh:
        json.dump(payload, fh, indent=2)
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
