"""E3/E4 — the §6 composition experiment, at the paper's database size
(430 users, 30 PC members, 450 papers, 1400 reviews).

Paper's measurements (Rust + MySQL):

    independent:  GDPR+ after an independent GDPR+        135 ms
    composed:     GDPR+ after ConfAnon (unoptimized)      452 ms
    confanon:     ConfAnon itself                       7,000 ms
    optimized:    GDPR+ after ConfAnon (optimization)     118 ms

Expected shape (E4): confanon >> composed > independent >= optimized, with
confanon/independent around the paper's ~52x and composed/independent > 1.
Absolute milliseconds differ (pure-Python engine); the orderings and rough
factors are asserted.
"""

from __future__ import annotations

import time

from conftest import paper_conference, print_table

PAPER_MS = {"independent": 135, "composed": 452, "confanon": 7000, "optimized": 118}


def measure_independent():
    db, engine = paper_conference()
    engine.apply("HotCRP-GDPR+", uid=5)
    return engine.apply("HotCRP-GDPR+", uid=6)


def measure_confanon_then_composed():
    db, engine = paper_conference()
    confanon_report = engine.apply("HotCRP-ConfAnon")
    composed_report = engine.apply("HotCRP-GDPR+", uid=6, optimize=False)
    return confanon_report, composed_report


def measure_optimized():
    db, engine = paper_conference()
    engine.apply("HotCRP-ConfAnon")
    return engine.apply("HotCRP-GDPR+", uid=6, optimize=True)


def run_experiment():
    independent = measure_independent()
    confanon, composed = measure_confanon_then_composed()
    optimized = measure_optimized()
    return {
        "independent": independent,
        "composed": composed,
        "confanon": confanon,
        "optimized": optimized,
    }


def bench_composition_experiment(benchmark):
    run_experiment()  # warm-up (imports, caches)
    results = run_experiment()

    # The timed target is the headline case: composed, unoptimized.
    def target():
        _, composed = measure_confanon_then_composed()
        return composed

    benchmark.pedantic(target, rounds=3, iterations=1)

    ms = {name: report.duration_s * 1e3 for name, report in results.items()}
    rows = []
    for name in ("independent", "composed", "confanon", "optimized"):
        report = results[name]
        rows.append(
            [
                name,
                f"{ms[name]:.1f}",
                PAPER_MS[name],
                report.db_stats.total,
                report.vault_stats.total,
                report.recorrelated,
                report.redundant_skipped,
            ]
        )
    print_table(
        "E3: GDPR+ composition (430 users / 30 PC / 450 papers / 1400 reviews)",
        ["case", "ms (ours)", "ms (paper)", "statements", "vault ops", "recorrelated", "skipped"],
        rows,
    )
    ratios = [
        ["confanon / independent", f"{ms['confanon'] / ms['independent']:.1f}x", "51.9x"],
        ["composed / independent", f"{ms['composed'] / ms['independent']:.2f}x", "3.35x"],
        ["optimized / independent", f"{ms['optimized'] / ms['independent']:.2f}x", "0.87x"],
        ["optimized / composed", f"{ms['optimized'] / ms['composed']:.2f}x", "0.26x"],
    ]
    print_table("E4: shape check (who wins, by what factor)", ["ratio", "ours", "paper"], ratios)

    # --- E4 assertions: orderings and rough factors -------------------------
    assert ms["confanon"] > ms["composed"] > ms["independent"], (
        "expected confanon >> composed > independent"
    )
    assert ms["optimized"] <= ms["independent"] * 1.5, (
        "optimization should bring composed cost back to ~independent"
    )
    assert ms["optimized"] < ms["composed"]
    # ConfAnon is roughly an order-of-magnitude-plus heavier (paper: ~52x).
    assert ms["confanon"] / ms["independent"] > 10
    # Composition overhead is real but far below redoing ConfAnon entirely.
    assert 1.2 < ms["composed"] / ms["independent"] < 30
    # Mechanism checks: composed used reveal functions; optimized skipped.
    assert results["composed"].recorrelated > 0
    assert results["optimized"].redundant_skipped > 0
    assert results["independent"].recorrelated == 0
