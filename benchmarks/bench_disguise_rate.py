"""A4 — disguising throughput under a rising disguise rate.

"The importance of reducing the cost of disguise application depends on
the rate of disguising, which may range from rare (as in today's
applications) to quite frequent (in a privacy-supporting world where users
freely disguise and reveal themselves, or data expires)." (§6)

This ablation simulates that world: N users scrub and (half of them)
return, back to back, on one conference. It reports aggregate throughput
and how per-disguise cost behaves as the database accumulates active
disguises and placeholder rows.
"""

from __future__ import annotations

import time

import pytest
from conftest import print_table

from repro import Disguiser
from repro.apps.hotcrp import HotcrpPopulation, all_disguises, generate_hotcrp

POPULATION = HotcrpPopulation(users=215, pc_members=15, papers=225, reviews=700)


def churn(n_users: int) -> dict:
    db = generate_hotcrp(population=POPULATION, seed=5)
    engine = Disguiser(db, seed=8)
    for spec in all_disguises():
        engine.register(spec)
    applied = []
    started = time.perf_counter()
    first = last = None
    for i, uid in enumerate(range(2, 2 + n_users)):
        report = engine.apply("HotCRP-GDPR+", uid=uid)
        if i == 0:
            first = report.duration_s
        last = report.duration_s
        applied.append(report.disguise_id)
    # half the users return, oldest first
    for did in applied[: n_users // 2]:
        engine.reveal(did)
    elapsed = time.perf_counter() - started
    operations = n_users + n_users // 2
    return {
        "operations": operations,
        "elapsed": elapsed,
        "ops_per_s": operations / elapsed,
        "first_apply_ms": first * 1e3,
        "last_apply_ms": last * 1e3,
        "db": db,
    }


@pytest.mark.parametrize("n_users", [2, 6, 12], ids=["rare", "occasional", "frequent"])
def bench_disguise_rate(benchmark, n_users):
    result = benchmark.pedantic(lambda: churn(n_users), rounds=3, iterations=1)
    print_table(
        f"A4: churn of {n_users} scrubs + {n_users // 2} reveals",
        ["ops", "elapsed s", "ops/s", "first apply ms", "last apply ms"],
        [
            [
                result["operations"],
                f"{result['elapsed']:.2f}",
                f"{result['ops_per_s']:.1f}",
                f"{result['first_apply_ms']:.1f}",
                f"{result['last_apply_ms']:.1f}",
            ]
        ],
    )
    assert result["db"].check_integrity() == []
    # Per-disguise cost should not blow up as disguises accumulate: the
    # last apply stays within an order of magnitude of the first.
    assert result["last_apply_ms"] < result["first_apply_ms"] * 10 + 50
