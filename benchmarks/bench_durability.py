"""D — write-ahead logging: O(delta) durability, group commit, recovery.

Four claims from the WAL work:

* **O(delta) persistence** — disguising one user writes bytes proportional
  to the rows that user owns, not to the database: the WAL bytes for one
  disguise in a 100k-row database must be within 2x of the same disguise
  in a 1k-row database, while snapshot-per-disguise costs grow ~100x.
* **Group commit** — ``fsync='batch'`` amortises syncs across commits;
  ``'always'`` syncs per commit; ``'never'`` leaves syncing to the OS.
* **Recovery** — replaying the log over the last checkpoint is linear in
  log length and reproduces the exact committed state.
* **Vault appends** — the journal-backed :class:`FileVault` appends in
  O(1): the second half of a put sequence costs about the same as the
  first (the old implementation re-read the whole file per put).

Run under pytest for the benchmark fixtures, or directly
(``python benchmarks/bench_durability.py [--smoke]``) to emit
``BENCH_durability.json`` for CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from conftest import print_line, print_table

from repro import (
    Database,
    Decorrelate,
    Default,
    Disguiser,
    DisguiseSpec,
    FakeName,
    Remove,
    Schema,
    TableDisguise,
    parse_schema,
)
from repro.storage.persist import save_database
from repro.storage.wal import FSYNC_POLICIES, default_wal_path, open_in_place, recover_database
from repro.vault.entry import OP_MODIFY, VaultEntry
from repro.vault.file_vault import FileVault

BLOG_DDL = """
CREATE TABLE users (
  id INT PRIMARY KEY,
  name TEXT PII,
  email TEXT PII,
  disabled BOOL NOT NULL DEFAULT FALSE
);
CREATE TABLE posts (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  title TEXT NOT NULL
);
"""

SUBJECT = 1
SUBJECT_POSTS = 20  # the disguise delta is constant regardless of DB size


def scrub_spec() -> DisguiseSpec:
    return DisguiseSpec(
        "DurabilityScrub",
        [
            TableDisguise(
                "users",
                transformations=[Remove("id = $UID")],
                generate_placeholder={
                    "name": FakeName(),
                    "email": Default(None),
                    "disabled": Default(True),
                },
            ),
            TableDisguise(
                "posts",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
        ],
    )


def blog_at(n_rows: int) -> Database:
    """~*n_rows* total rows; the subject always owns SUBJECT_POSTS posts."""
    n_users = max(5, n_rows // 10)
    n_posts = n_rows - n_users
    db = Database(Schema(parse_schema(BLOG_DDL)))
    db.insert_many(
        "users",
        [{"id": u, "name": f"user {u}", "email": f"u{u}@x.io"} for u in range(1, n_users + 1)],
    )
    db.insert_many(
        "posts",
        [{"id": i, "user_id": SUBJECT, "title": f"mine {i}"} for i in range(1, SUBJECT_POSTS + 1)]
        + [
            {"id": SUBJECT_POSTS + j, "user_id": 2 + j % (n_users - 2), "title": f"other {j}"}
            for j in range(1, n_posts - SUBJECT_POSTS + 1)
        ],
    )
    return db


# -- Part 1: O(delta) bytes per disguise -----------------------------------------


def delta_at(n_rows: int, workdir: Path) -> dict:
    db_path = workdir / f"blog_{n_rows}.jsonl"
    save_database(blog_at(n_rows), db_path)
    snapshot_bytes = db_path.stat().st_size
    start = time.perf_counter()
    with open_in_place(db_path, fsync="batch") as handle:
        engine = Disguiser(handle.db, seed=7)
        engine.apply(scrub_spec(), uid=SUBJECT)
        wal_bytes = handle.wal.bytes_written
    wall = time.perf_counter() - start
    return {
        "n_rows": n_rows,
        "wal_bytes": wal_bytes,
        "snapshot_bytes": snapshot_bytes,
        "snapshot_over_wal": snapshot_bytes / wal_bytes,
        "wall_ms": wall * 1e3,
    }


def delta_results(scales: tuple[int, int], workdir: Path) -> dict:
    small, large = (delta_at(n, workdir) for n in scales)
    return {
        "small": small,
        "large": large,
        "wal_growth": large["wal_bytes"] / small["wal_bytes"],
        "snapshot_growth": large["snapshot_bytes"] / small["snapshot_bytes"],
    }


def check_delta(results: dict) -> None:
    assert results["wal_growth"] <= 2.0, (
        f"WAL bytes grew {results['wal_growth']:.2f}x with DB size: not O(delta)"
    )
    assert results["snapshot_growth"] >= 0.8 * (
        results["large"]["n_rows"] / results["small"]["n_rows"]
    ), "harness broken: snapshot cost did not scale with DB size"


# -- Part 2: group commit / fsync policies ---------------------------------------


def fsync_results(commits: int, workdir: Path) -> list[dict]:
    out = []
    for policy in FSYNC_POLICIES:
        db_path = workdir / f"fsync_{policy}.jsonl"
        save_database(blog_at(1_000), db_path)
        with open_in_place(db_path, fsync=policy, batch_commits=8) as handle:
            start = time.perf_counter()
            for i in range(commits):
                handle.db.update_by_pk("users", SUBJECT, {"name": f"v{i}"})
            wall = time.perf_counter() - start
            out.append(
                {
                    "policy": policy,
                    "commits": commits,
                    "syncs": handle.wal.syncs,
                    "wall_ms": wall * 1e3,
                    "ms_per_commit": wall * 1e3 / commits,
                }
            )
    return out


def check_fsync(results: list[dict]) -> None:
    by = {r["policy"]: r for r in results}
    assert by["always"]["syncs"] >= by["always"]["commits"]
    assert 0 < by["batch"]["syncs"] <= by["always"]["syncs"] // 4
    assert by["never"]["syncs"] == 0


# -- Part 3: recovery time vs log length -----------------------------------------


def recovery_at(commits: int, workdir: Path) -> dict:
    db_path = workdir / f"recover_{commits}.jsonl"
    save_database(blog_at(1_000), db_path)
    with open_in_place(db_path, fsync="never") as handle:
        for i in range(commits):
            handle.db.update_by_pk("users", 1 + i % 50, {"name": f"r{i}"})
    wal_bytes = default_wal_path(db_path).stat().st_size
    start = time.perf_counter()
    recovered = recover_database(db_path)
    wall = time.perf_counter() - start
    assert recovered.get("users", 1 + (commits - 1) % 50)["name"] == f"r{commits - 1}"
    return {"commits": commits, "wal_bytes": wal_bytes, "recover_ms": wall * 1e3}


def recovery_results(scales: tuple[int, ...], workdir: Path) -> list[dict]:
    return [recovery_at(n, workdir) for n in scales]


# -- Part 4: vault append cost ---------------------------------------------------


def _entry(i: int) -> VaultEntry:
    return VaultEntry(
        entry_id=i,
        disguise_id=1,
        seq=i,
        epoch=1,
        owner=7,
        table="users",
        pk=i,
        op=OP_MODIFY,
        payload={"column": "name", "old": f"user {i}", "new": "x"},
    )


def vault_results(n_puts: int, workdir: Path) -> dict:
    vault = FileVault(workdir / "vault", compact_threshold=1 << 30)
    half = n_puts // 2

    def put_range(lo: int, hi: int) -> float:
        start = time.perf_counter()
        for i in range(lo, hi):
            vault.put(_entry(i))
        return time.perf_counter() - start

    first = put_range(1, half + 1)
    second = put_range(half + 1, n_puts + 1)
    return {
        "puts": n_puts,
        "first_half_ms": first * 1e3,
        "second_half_ms": second * 1e3,
        "slowdown": second / first,
    }


def check_vault(results: dict) -> None:
    # O(1) appends: the second half must not degrade the way the old
    # read-modify-write implementation did (~3x at this size, worse beyond).
    assert results["slowdown"] <= 2.0, (
        f"vault appends degraded {results['slowdown']:.2f}x over the run"
    )


# -- pytest benchmark entry points -----------------------------------------------


def bench_delta_durability(benchmark):
    """WAL bytes per disguise stay flat while the database grows 10x."""
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        results = delta_results((1_000, 10_000), workdir)
        benchmark.pedantic(lambda: delta_at(1_000, workdir), rounds=3, iterations=1)
    print_table(
        "D1: bytes to persist one disguise",
        ["rows", "WAL bytes", "snapshot bytes", "snapshot/WAL", "ms"],
        [
            [r["n_rows"], r["wal_bytes"], r["snapshot_bytes"],
             f"{r['snapshot_over_wal']:.0f}x", f"{r['wall_ms']:.1f}"]
            for r in (results["small"], results["large"])
        ],
    )
    print_line(
        f"   WAL grew {results['wal_growth']:.2f}x while snapshots grew "
        f"{results['snapshot_growth']:.0f}x"
    )
    check_delta(results)


def bench_group_commit(benchmark):
    """Batch fsync amortises syncs; throughput ordering follows the policy."""
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        results = fsync_results(64, workdir)
        benchmark.pedantic(lambda: fsync_results(16, workdir), rounds=3, iterations=1)
    print_table(
        "D2: fsync policy vs commit cost",
        ["policy", "commits", "syncs", "ms total", "ms/commit"],
        [
            [r["policy"], r["commits"], r["syncs"],
             f"{r['wall_ms']:.1f}", f"{r['ms_per_commit']:.3f}"]
            for r in results
        ],
    )
    check_fsync(results)


def bench_recovery(benchmark):
    """Recovery replays the log linearly and lands on the committed state."""
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        results = recovery_results((50, 500), workdir)
        benchmark.pedantic(lambda: recovery_at(50, workdir), rounds=3, iterations=1)
    print_table(
        "D3: recovery time vs log length",
        ["commits", "WAL bytes", "recover ms"],
        [[r["commits"], r["wal_bytes"], f"{r['recover_ms']:.1f}"] for r in results],
    )


def bench_vault_appends(benchmark):
    """Journal vault puts stay O(1) as the vault grows."""
    with tempfile.TemporaryDirectory() as tmp:
        results = vault_results(1_000, Path(tmp))
        with tempfile.TemporaryDirectory() as tmp2:
            benchmark.pedantic(
                lambda: vault_results(200, Path(tmp2) / "b"), rounds=1, iterations=1
            )
    print_table(
        "D4: vault append cost over a growing journal",
        ["puts", "first half ms", "second half ms", "slowdown"],
        [[results["puts"], f"{results['first_half_ms']:.1f}",
          f"{results['second_half_ms']:.1f}", f"{results['slowdown']:.2f}x"]],
    )
    check_vault(results)


# -- CI smoke mode ---------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced scales for CI (10k rows instead of 100k)",
    )
    args = parser.parse_args()
    delta_scales = (1_000, 10_000) if args.smoke else (1_000, 100_000)
    recovery_scales = (20, 200) if args.smoke else (100, 1_000)
    commits = 32 if args.smoke else 128
    n_puts = 400 if args.smoke else 2_000

    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        payload = {
            "smoke": args.smoke,
            "delta": delta_results(delta_scales, workdir),
            "fsync": fsync_results(commits, workdir),
            "recovery": recovery_results(recovery_scales, workdir),
            "vault": vault_results(n_puts, workdir),
        }
    check_delta(payload["delta"])
    check_fsync(payload["fsync"])
    check_vault(payload["vault"])
    with open("BENCH_durability.json", "w") as fh:
        json.dump(payload, fh, indent=2)
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
