"""P — index-aware planning and batched disguise execution.

Two claims from the planner/batching work:

* **Planning** — IN-list and range predicates on indexed columns resolve
  through index probes instead of full scans: at 10k rows the planned
  query must examine >=5x fewer rows (and it is also wall-clock faster).
* **Batching** — a disguise over N affected rows issues O(1) storage
  *statements* (``db.stats.statements``): the statement count stays flat
  across N = {10, 100, 1000} while the per-row counters scale linearly.

Run under pytest for the benchmark fixtures, or directly
(``python benchmarks/bench_planner.py``) to emit ``BENCH_planner.json``
for CI smoke checks.
"""

from __future__ import annotations

import json
import time

from conftest import print_line, print_table

from repro import (
    Database,
    Decorrelate,
    Default,
    Disguiser,
    DisguiseSpec,
    FakeName,
    Remove,
    Schema,
    TableDisguise,
    parse_schema,
)

# -- Part 1: planner vs full scan ------------------------------------------------

N_ROWS = 10_000
PREDICATES = [
    ("in-list", "uid IN (3, 7, 11)"),
    ("range", "score BETWEEN 9900 AND 9950"),
]

EVENTS_DDL = """
CREATE TABLE events (
  id INT PRIMARY KEY,
  uid INT NOT NULL,
  score INT NOT NULL,
  title TEXT
);
"""


def events_db(indexed: bool) -> Database:
    db = Database(Schema(parse_schema(EVENTS_DDL)))
    db.insert_many(
        "events",
        [
            {"id": i, "uid": i % 100, "score": i, "title": f"event {i}"}
            for i in range(N_ROWS)
        ],
    )
    if indexed:
        table = db.table("events")
        table.create_index("uid")
        table.create_index("score")
    return db


def run_query(db: Database, where: str, repeats: int = 5):
    """Returns (result size, rows examined per run, best wall-clock seconds)."""
    table = db.table("events")
    rows = db.select("events", where)  # warm the parse cache
    before = table.rows_examined
    db.select("events", where)
    examined = table.rows_examined - before
    best = min(
        _timed(lambda: db.select("events", where)) for _ in range(repeats)
    )
    return len(rows), examined, best


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def planner_results() -> list[dict]:
    indexed = events_db(True)
    full = events_db(False)
    out = []
    for name, where in PREDICATES:
        n_rows, examined_idx, secs_idx = run_query(indexed, where)
        n_full, examined_full, secs_full = run_query(full, where)
        assert n_rows == n_full, "plan changed the result set"
        out.append(
            {
                "predicate": name,
                "where": where,
                "result_rows": n_rows,
                "plan": indexed.table("events").last_plan,
                "rows_examined_indexed": examined_idx,
                "rows_examined_full_scan": examined_full,
                "rows_examined_speedup": examined_full / examined_idx,
                "wall_ms_indexed": secs_idx * 1e3,
                "wall_ms_full_scan": secs_full * 1e3,
                "wall_speedup": secs_full / secs_idx,
            }
        )
    return out


def bench_planner_predicates(benchmark):
    """IN-list and range predicates: index probes beat full scans >=5x."""
    results = planner_results()
    db = events_db(True)
    benchmark.pedantic(
        lambda: [db.select("events", where) for _, where in PREDICATES],
        rounds=5,
        iterations=1,
    )
    print_table(
        f"P1: planned vs full scan at {N_ROWS} rows",
        ["predicate", "plan", "rows", "examined", "full scan", "speedup", "wall"],
        [
            [
                r["predicate"],
                r["plan"],
                r["result_rows"],
                r["rows_examined_indexed"],
                r["rows_examined_full_scan"],
                f"{r['rows_examined_speedup']:.0f}x",
                f"{r['wall_speedup']:.1f}x",
            ]
            for r in results
        ],
    )
    for r in results:
        assert r["rows_examined_speedup"] >= 5.0, (
            f"{r['predicate']}: examined only "
            f"{r['rows_examined_speedup']:.1f}x fewer rows"
        )
        assert r["wall_speedup"] > 1.0, f"{r['predicate']}: no wall-clock win"


# -- Part 2: O(1) statements per disguise ----------------------------------------

BLOG_DDL = """
CREATE TABLE users (
  id INT PRIMARY KEY,
  name TEXT PII,
  email TEXT PII,
  disabled BOOL NOT NULL DEFAULT FALSE
);
CREATE TABLE posts (
  id INT PRIMARY KEY,
  user_id INT NOT NULL REFERENCES users(id),
  title TEXT NOT NULL,
  score INT NOT NULL DEFAULT 0
);
CREATE TABLE comments (
  id INT PRIMARY KEY,
  post_id INT NOT NULL REFERENCES posts(id) ON DELETE CASCADE,
  user_id INT NOT NULL REFERENCES users(id),
  body TEXT
);
CREATE TABLE follows (
  id INT PRIMARY KEY,
  follower_id INT NOT NULL REFERENCES users(id),
  followee_id INT NOT NULL REFERENCES users(id)
);
"""

BATCH_SCALES = (10, 100, 1000)
SUBJECT = 1


def scrub_spec() -> DisguiseSpec:
    return DisguiseSpec(
        "BlogScrub",
        [
            TableDisguise(
                "users",
                transformations=[Remove("id = $UID")],
                generate_placeholder={
                    "name": FakeName(),
                    "email": Default(None),
                    "disabled": Default(True),
                },
            ),
            TableDisguise(
                "posts",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
            TableDisguise(
                "comments",
                transformations=[Decorrelate("user_id = $UID", foreign_key="user_id")],
            ),
            TableDisguise(
                "follows",
                transformations=[Remove("follower_id = $UID OR followee_id = $UID")],
            ),
        ],
    )


def blog_at(n: int) -> Database:
    """One target user with *n* posts and *n* comments, plus bystanders."""
    db = Database(Schema(parse_schema(BLOG_DDL)))
    db.insert_many(
        "users",
        [{"id": uid, "name": f"user {uid}", "email": f"u{uid}@x.io"} for uid in range(1, 6)],
    )
    db.insert_many(
        "posts",
        # Posts 1..n belong to the subject; a few bystander posts follow.
        [{"id": i, "user_id": SUBJECT, "title": f"p{i}"} for i in range(1, n + 1)]
        + [{"id": n + j, "user_id": 2 + j % 3, "title": f"b{j}"} for j in range(1, 6)],
    )
    db.insert_many(
        "comments",
        [
            {"id": i, "post_id": n + 1 + i % 5, "user_id": SUBJECT, "body": "hi"}
            for i in range(1, n + 1)
        ],
    )
    db.insert_many(
        "follows",
        [
            {"id": 1, "follower_id": SUBJECT, "followee_id": 2},
            {"id": 2, "follower_id": 3, "followee_id": SUBJECT},
        ],
    )
    db.stats.reset()
    return db


def scrub_at(n: int) -> dict:
    db = blog_at(n)
    engine = Disguiser(db, seed=7)
    before = db.stats.snapshot()
    start = time.perf_counter()
    report = engine.apply(scrub_spec(), uid=SUBJECT)
    wall = time.perf_counter() - start
    delta = db.stats.delta(before)
    db.check_integrity()
    return {
        "n": n,
        "statements": delta.statements,
        "row_operations": delta.total,
        "rows_touched": report.rows_touched,
        "wall_ms": wall * 1e3,
    }


def batch_results() -> list[dict]:
    return [scrub_at(n) for n in BATCH_SCALES]


def bench_batched_statements(benchmark):
    """Statement count stays flat while affected rows grow 100x."""
    results = batch_results()
    benchmark.pedantic(lambda: scrub_at(BATCH_SCALES[0]), rounds=3, iterations=1)
    print_table(
        "P2: statements vs affected rows (BlogScrub)",
        ["N", "stmts", "row ops", "rows touched", "ms"],
        [
            [r["n"], r["statements"], r["row_operations"], r["rows_touched"], f"{r['wall_ms']:.1f}"]
            for r in results
        ],
    )
    smallest, largest = results[0], results[-1]
    assert largest["rows_touched"] >= 50 * smallest["rows_touched"] / 10, (
        "scaling harness broken: rows touched did not grow with N"
    )
    # O(1) statements: growing the footprint 100x must not grow the number
    # of storage statements the disguise issues.
    assert largest["statements"] == smallest["statements"], (
        f"statements grew with N: {[r['statements'] for r in results]}"
    )
    print_line(
        f"   {largest['rows_touched']} rows touched in "
        f"{largest['statements']} statements at N={largest['n']}"
    )


# -- CI smoke mode ---------------------------------------------------------------


def main() -> None:
    payload = {
        "n_rows": N_ROWS,
        "planner": planner_results(),
        "batch": batch_results(),
    }
    for r in payload["planner"]:
        assert r["rows_examined_speedup"] >= 5.0, r
    stmts = [r["statements"] for r in payload["batch"]]
    assert len(set(stmts)) == 1, f"statements grew with N: {stmts}"
    with open("BENCH_planner.json", "w") as fh:
        json.dump(payload, fh, indent=2)
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
