"""S — concurrent disguise service: throughput vs worker count.

The service turns the single-threaded engine into the paper's always-on
disguising tool: K workers drain a durable job queue under table-granular
two-phase locking and group-commit through one write-ahead log. This
benchmark measures drained jobs/second at 1, 2, 4, and 8 workers over a
Lobsters database, one GDPR deletion job per user.

What scaling to expect — and why, honestly:

* The engine is pure Python, so the GIL serializes job *execution*; extra
  workers add no CPU parallelism. The win is **I/O overlap**: a worker
  releases its table locks at commit, appends its WAL unit, and only then
  waits at the group-commit barrier — so while the fsync leader waits on
  the disk, other workers execute the next jobs and ride the same fsync.
* ``sync_delay`` models a disk-class fsync (a few ms; tmpfs/CI SSDs fake
  near-zero fsyncs, which would hide exactly the wait the architecture
  overlaps). With it, 4 workers must clear >1.5x the jobs/second of 1
  worker; without real sync cost the speedup honestly tends to ~1x.

Run under pytest, or directly
(``python benchmarks/bench_service_throughput.py [--smoke]``) to emit
``BENCH_service.json`` for CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

from conftest import print_line, print_table

from repro.apps.lobsters import LobstersPopulation, generate_lobsters, lobsters_gdpr
from repro.core.engine import Disguiser
from repro.service import DisguiseService
from repro.storage.persist import save_database
from repro.storage.wal import WalDatabase, recover_database

WORKER_COUNTS = (1, 2, 4, 8)
SYNC_DELAY_S = 0.004  # modeled disk-class fsync (see module docstring)


def run_at(workers: int, jobs: int, workdir: Path) -> dict:
    """Drain *jobs* GDPR deletions with *workers* workers; report rates."""
    population = LobstersPopulation(users=jobs, stories=2 * jobs, comments=5 * jobs)
    snapshot = workdir / f"lobsters_w{workers}.jsonl"
    save_database(generate_lobsters(population=population, seed=7), snapshot)
    handle = WalDatabase(snapshot, fsync="always", sync_delay=SYNC_DELAY_S)
    engine = Disguiser(handle.db, seed=3)
    engine.register(lobsters_gdpr())
    uids = sorted(row["id"] for row in handle.db.select("users"))[:jobs]
    service = DisguiseService(
        engine,
        workdir / f"queue_w{workers}.jobs",
        workers=workers,
        wal=handle.wal,
        queue_fsync=False,
    )
    # Pre-fill the queue so the measurement is pure drain throughput.
    for uid in uids:
        service.submit_apply("Lobsters-GDPR", uid=uid)
    start = time.perf_counter()
    with service:
        drained = service.drain(timeout=600.0)
    wall = time.perf_counter() - start
    assert drained, f"drain timed out at {workers} worker(s)"
    metrics = service.metrics()
    assert metrics["jobs_done"] == len(uids) and metrics["jobs_dead"] == 0
    handle.close()
    recovered = recover_database(snapshot)
    assert recovered.check_integrity() == []
    assert all(recovered.get("users", uid) is None for uid in uids)
    return {
        "workers": workers,
        "jobs": len(uids),
        "jobs_per_s": len(uids) / wall,
        "wall_s": wall,
        "wal_syncs": metrics["wal_syncs"],
        "syncs_per_job": metrics["wal_syncs"] / len(uids),
        "lock_waits": metrics["lock_waits"],
        "deadlocks": metrics["deadlocks"],
        "p50_latency_ms": metrics["p50_latency_s"] * 1e3,
        "p99_latency_ms": metrics["p99_latency_s"] * 1e3,
    }


def throughput_results(jobs: int, workdir: Path) -> list[dict]:
    results = []
    for workers in WORKER_COUNTS:
        results.append(run_at(workers, jobs, workdir))
    base = results[0]["jobs_per_s"]
    for row in results:
        row["speedup"] = row["jobs_per_s"] / base
    return results


def check_scaling(results: list[dict]) -> None:
    by = {r["workers"]: r for r in results}
    assert by[4]["speedup"] > 1.5, (
        f"4 workers reached only {by[4]['speedup']:.2f}x of 1 worker "
        f"(need >1.5x): group commit is not overlapping the sync waits"
    )
    # Group commit must be doing the sharing: multi-worker runs need
    # measurably fewer fsyncs per job than the serial run.
    assert by[4]["syncs_per_job"] < by[1]["syncs_per_job"], (
        "4 workers issued as many fsyncs per job as 1 worker: "
        "leader/follower group commit is not sharing syncs"
    )
    for row in results:
        assert row["deadlocks"] == 0, f"unexpected deadlocks: {row}"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="smaller workload for CI"
    )
    parser.add_argument("--jobs", type=int, default=None, help="jobs per run")
    args = parser.parse_args()
    jobs = args.jobs if args.jobs is not None else (48 if args.smoke else 120)

    with tempfile.TemporaryDirectory(prefix="bench_service_") as tmp:
        results = throughput_results(jobs, Path(tmp))

    print_table(
        f"service throughput: GDPR deletion jobs/s by worker count "
        f"({jobs} jobs per run, modeled fsync {SYNC_DELAY_S * 1e3:.0f} ms, "
        f"fsync='always' + group commit)",
        ["workers", "jobs/s", "speedup", "syncs/job", "p50 ms", "p99 ms", "waits"],
        [
            [
                r["workers"],
                f"{r['jobs_per_s']:.1f}",
                f"{r['speedup']:.2f}x",
                f"{r['syncs_per_job']:.2f}",
                f"{r['p50_latency_ms']:.1f}",
                f"{r['p99_latency_ms']:.1f}",
                r["lock_waits"],
            ]
            for r in results
        ],
    )
    check_scaling(results)
    print_line("scaling check passed: >1.5x at 4 workers, fewer syncs per job")

    out = Path(__file__).resolve().parent.parent / "BENCH_service.json"
    out.write_text(
        json.dumps(
            {
                "benchmark": "service_throughput",
                "jobs_per_run": jobs,
                "sync_delay_s": SYNC_DELAY_S,
                "results": results,
            },
            indent=2,
        )
        + "\n",
        encoding="utf-8",
    )
    print_line(f"wrote {out}")


if __name__ == "__main__":
    main()
