"""E1 — Figure 4: disguise specifications vs. relational schemas.

Paper's table:

    Application-Disguise   #Object Types   Schema LoC   Disguise LoC
    Lobsters-GDPR          19              318          100
    HotCRP-GDPR            25              352          142
    HotCRP-GDPR+           25              352          255
    HotCRP-ConfAnon        25              352          232

We regenerate the same rows from our schemas and specs. The absolute LoC
differ (different DDL dialect, different spec syntax); the claims checked
are the structural ones: the object-type counts match the paper exactly,
and every disguise spec is the same order of magnitude as — and no larger
than — its application's schema ("similar complexity to a relational
schema", §6).
"""

from __future__ import annotations

from conftest import print_table

from repro.apps import hotcrp, lobsters

PAPER_ROWS = {
    "Lobsters-GDPR": (19, 318, 100),
    "HotCRP-GDPR": (25, 352, 142),
    "HotCRP-GDPR+": (25, 352, 255),
    "HotCRP-ConfAnon": (25, 352, 232),
}


def collect_rows():
    rows = []
    lob_schema = lobsters.lobsters_schema()
    for spec in lobsters.all_disguises():
        rows.append(
            (spec.name, lob_schema.object_type_count(), lobsters.schema_loc(), spec.loc())
        )
    hot_schema = hotcrp.hotcrp_schema()
    for spec in hotcrp.all_disguises():
        rows.append(
            (spec.name, hot_schema.object_type_count(), hotcrp.schema_loc(), spec.loc())
        )
    return rows


def bench_fig4_spec_complexity(benchmark):
    rows = benchmark(collect_rows)

    table = []
    for name, objects, schema_loc, disguise_loc in rows:
        paper_objects, paper_schema, paper_disguise = PAPER_ROWS[name]
        table.append(
            [
                name,
                objects,
                f"{schema_loc} (paper {paper_schema})",
                f"{disguise_loc} (paper {paper_disguise})",
                f"{disguise_loc / schema_loc:.2f}",
            ]
        )
    print_table(
        "Figure 4: spec complexity vs schema complexity",
        ["Disguise", "#Objects", "Schema LoC", "Disguise LoC", "ratio"],
        table,
    )

    by_name = {name: (objects, schema, disguise) for name, objects, schema, disguise in rows}
    # Object-type counts match the paper exactly.
    for name, (paper_objects, _, _) in PAPER_ROWS.items():
        assert by_name[name][0] == paper_objects
    # Shape: every disguise is no larger than its schema, same order of
    # magnitude (paper ratios range 0.31-0.72).
    for name, (_, schema_loc, disguise_loc) in by_name.items():
        assert disguise_loc <= schema_loc
        assert disguise_loc >= schema_loc * 0.05
    # Shape: the nuanced policies (GDPR+, ConfAnon) are at least as rich as
    # plain GDPR (paper: 255 and 232 vs 142).
    assert by_name["HotCRP-GDPR+"][2] >= by_name["HotCRP-GDPR"][2] * 0.9
    assert by_name["HotCRP-ConfAnon"][2] >= by_name["HotCRP-GDPR"][2] * 0.9
