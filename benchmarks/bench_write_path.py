"""W — compiled write path: delta undo/redo, batched indexes, batch vault writes.

Three claims from the compiled-write-path work (ISSUE 7):

* **Batched UPDATE** — routing ``update_where`` through ``match_rows`` +
  ``apply_updates`` (no RowView materialization, change set coerced once,
  per-index patches batched, delta undo/redo instead of full-row copies)
  must push >=3x more rows/s than the legacy full-row path
  (``db.delta_writes = False``) at the 100k-row scale with the WAL
  attached.
* **WAL bytes/statement** — a batched UPDATE logs ONE ``deltas`` frame
  carrying only changed columns, so log bytes per statement must drop
  >=2x vs the legacy full-row ``updates`` frame.
* **Batch vault encryption** — ``encrypt_many`` derives subkeys once and
  runs one keystream over the concatenated batch; entries/s must not
  regress vs the per-entry ``encrypt`` loop (the win is modest per entry
  but compounds with the single journal append + fsync per owner batch).

Run under pytest for the benchmark fixtures, or directly
(``python benchmarks/bench_write_path.py [--smoke]``) to emit
``BENCH_writepath.json`` for CI smoke checks.
"""

from __future__ import annotations

import argparse
import json
import random
import tempfile
import time
from pathlib import Path

from conftest import print_line, print_table

from repro import Database, Schema, parse_schema
from repro.crypto.cipher import SecretKey, encrypt, encrypt_many
from repro.storage.persist import save_database
from repro.storage.wal import open_in_place

# Wide rows on purpose: the legacy path copies and logs every column of
# every touched row, the delta path only the one that changed. ~10 columns
# with chunky text model the disguise target tables (PII-heavy app rows).
EVENTS_DDL = """
CREATE TABLE events (
  id INT PRIMARY KEY,
  uid INT,
  kind TEXT,
  score INT,
  ratio REAL,
  title TEXT,
  body TEXT,
  tags TEXT,
  origin TEXT,
  note TEXT
);
"""

FULL_SCALES = (10_000, 100_000)
SMOKE_SCALES = (2_000, 10_000)

UPDATE_SPEEDUP_FLOOR = 3.0
WAL_REDUCTION_FLOOR = 2.0
VAULT_BATCH_FLOOR = 0.9  # batch API must at least not regress

_CHUNK = "lorem ipsum dolor sit amet, consectetur adipiscing elit "


def make_rows(n: int, seed: int = 11) -> list[dict]:
    rng = random.Random(seed)
    return [
        {
            "id": i,
            "uid": i % 100,
            "kind": rng.choice(["click", "view", "purchase"]),
            "score": rng.randrange(10_000),
            "ratio": rng.random(),
            "title": f"event {i} in stream {i % 7}",
            "body": _CHUNK * 3,
            "tags": "alpha,beta,gamma,delta",
            "origin": rng.choice(["web", "mobile", "api"]),
            "note": _CHUNK,
        }
        for i in range(n)
    ]


def _best(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _wal_db(workdir: Path, n: int, delta_writes: bool):
    snap = workdir / f"events-{n}-{delta_writes}.jsonl"
    db = Database(Schema(parse_schema(EVENTS_DDL)))
    db.insert_many("events", make_rows(n))
    db.table("events").create_index("uid")
    save_database(db, snap)
    handle = open_in_place(snap, fsync="never")
    handle.db.delta_writes = delta_writes
    return handle


# -- Part 1: batched UPDATE throughput, old vs new --------------------------------


def update_throughput_at(workdir: Path, n: int) -> dict:
    """rows/s for ``update_where`` touching every row, WAL attached."""
    results = {}
    for label, delta_writes in (("full_row", False), ("delta", True)):
        handle = _wal_db(workdir, n, delta_writes)
        db = handle.db
        flip = [0]

        def statement():
            # Alternate the value so every row actually changes each call
            # (a no-op change would be dropped from the delta).
            flip[0] ^= 1
            db.update_where("events", "score >= 0", {"kind": f"k{flip[0]}"})

        statement()  # warm plan cache and page everything in
        results[label] = _best(statement)
        handle.close()
    return {
        "n_rows": n,
        "full_row_rows_per_s": n / results["full_row"],
        "delta_rows_per_s": n / results["delta"],
        "speedup": results["full_row"] / results["delta"],
    }


# -- Part 2: WAL bytes per statement ----------------------------------------------


def wal_bytes_at(workdir: Path, n: int) -> dict:
    """Log bytes appended by one batched UPDATE over all rows."""
    out = {"n_rows": n}
    for label, delta_writes in (("full_row", False), ("delta", True)):
        handle = _wal_db(workdir, n, delta_writes)
        before = handle.wal.bytes_written
        handle.db.update_where("events", "score >= 0", {"kind": "z"})
        out[f"{label}_bytes"] = handle.wal.bytes_written - before
        handle.close()
    out["reduction"] = out["full_row_bytes"] / out["delta_bytes"]
    return out


# -- Part 3: vault encryption, per-entry loop vs batch API ------------------------


def vault_encrypt_results(entries: int = 2_000, size: int = 256) -> dict:
    key = SecretKey.generate()
    rng = random.Random(5)
    plaintexts = [bytes(rng.randrange(256) for _ in range(size)) for _ in range(entries)]

    secs_loop = _best(lambda: [encrypt(key, p) for p in plaintexts])
    secs_batch = _best(lambda: encrypt_many(key, plaintexts))
    return {
        "entries": entries,
        "entry_bytes": size,
        "loop_entries_per_s": entries / secs_loop,
        "batch_entries_per_s": entries / secs_batch,
        "speedup": secs_loop / secs_batch,
    }


# -- Checks (shared by pytest and smoke mode) ------------------------------------


def check_update_throughput(results: list[dict]) -> None:
    top = results[-1]
    assert top["speedup"] >= UPDATE_SPEEDUP_FLOOR, (
        f"delta path only {top['speedup']:.2f}x full-row at {top['n_rows']} rows"
    )


def check_wal_bytes(results: list[dict]) -> None:
    top = results[-1]
    assert top["reduction"] >= WAL_REDUCTION_FLOOR, (
        f"delta WAL records only {top['reduction']:.2f}x smaller at "
        f"{top['n_rows']} rows"
    )


def check_vault(result: dict) -> None:
    assert result["speedup"] >= VAULT_BATCH_FLOOR, (
        f"encrypt_many regressed to {result['speedup']:.2f}x of the loop"
    )


# -- pytest benchmark entry points ------------------------------------------------


def bench_batched_update_throughput(benchmark, tmp_path):
    """Delta write path pushes >=3x more UPDATE rows/s than full-row."""
    results = [update_throughput_at(tmp_path, n) for n in FULL_SCALES]
    handle = _wal_db(tmp_path, FULL_SCALES[0], True)
    flip = [0]

    def statement():
        flip[0] ^= 1
        handle.db.update_where("events", "score >= 0", {"kind": f"k{flip[0]}"})

    benchmark.pedantic(statement, rounds=5, iterations=1)
    handle.close()
    print_table(
        "W1: batched UPDATE, full-row vs delta write path",
        ["rows", "full-row rows/s", "delta rows/s", "speedup"],
        [
            [
                r["n_rows"],
                f"{r['full_row_rows_per_s']:,.0f}",
                f"{r['delta_rows_per_s']:,.0f}",
                f"{r['speedup']:.1f}x",
            ]
            for r in results
        ],
    )
    check_update_throughput(results)


def bench_wal_bytes_per_statement(benchmark, tmp_path):
    """Delta frames shrink WAL bytes/statement >=2x."""
    results = [wal_bytes_at(tmp_path, n) for n in SMOKE_SCALES]
    handle = _wal_db(tmp_path, SMOKE_SCALES[0], True)
    benchmark.pedantic(
        lambda: handle.db.update_where("events", "score >= 0", {"kind": "z"}),
        rounds=5,
        iterations=1,
    )
    handle.close()
    print_table(
        "W2: WAL bytes per batched UPDATE statement",
        ["rows", "full-row bytes", "delta bytes", "reduction"],
        [
            [
                r["n_rows"],
                f"{r['full_row_bytes']:,}",
                f"{r['delta_bytes']:,}",
                f"{r['reduction']:.1f}x",
            ]
            for r in results
        ],
    )
    check_wal_bytes(results)


def bench_vault_batch_encrypt(benchmark):
    """encrypt_many must not be slower than the per-entry loop."""
    result = vault_encrypt_results()
    key = SecretKey.generate()
    plaintexts = [b"x" * 256] * 200
    benchmark.pedantic(lambda: encrypt_many(key, plaintexts), rounds=5, iterations=1)
    print_line(
        f"W3: vault encrypt {result['loop_entries_per_s']:,.0f}/s loop vs "
        f"{result['batch_entries_per_s']:,.0f}/s batch "
        f"({result['speedup']:.2f}x)"
    )
    check_vault(result)


# -- CI smoke mode ---------------------------------------------------------------


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="reduced scales for CI (10k rows instead of 100k)",
    )
    args = parser.parse_args()
    scales = SMOKE_SCALES if args.smoke else FULL_SCALES
    entries = 500 if args.smoke else 2_000
    with tempfile.TemporaryDirectory(prefix="bench_write_path") as tmp:
        workdir = Path(tmp)
        payload = {
            "smoke": args.smoke,
            "batched_update": [update_throughput_at(workdir, n) for n in scales],
            "wal_bytes": [wal_bytes_at(workdir, n) for n in scales],
            "vault_encrypt": vault_encrypt_results(entries),
        }
    check_update_throughput(payload["batched_update"])
    check_wal_bytes(payload["wal_bytes"])
    check_vault(payload["vault_encrypt"])
    with open("BENCH_writepath.json", "w") as fh:
        json.dump(payload, fh, indent=2)
    print(json.dumps(payload, indent=2))


if __name__ == "__main__":
    main()
