"""A5 — cost of vault cryptography: plaintext vs encrypted vs escrowed.

The §4.2 deployments trade tool access for security; this ablation prices
them. Measured on one PC member's GDPR+ apply+reveal (quarter-scale
conference): a plaintext memory vault, an encrypted vault (per-owner key),
and an encrypted vault whose key is recovered through 2-of-3 threshold
escrow before the reveal (footnote 1's lost-key path). Plus microbenchmarks
of the primitives themselves.
"""

from __future__ import annotations

import os

import pytest
from conftest import print_table

from repro import Disguiser
from repro.apps.hotcrp import HotcrpPopulation, all_disguises, generate_hotcrp
from repro.crypto.cipher import SecretKey, decrypt, encrypt
from repro.crypto.shamir import recover_secret, split_secret
from repro.crypto.threshold import escrow_key
from repro.vault import EncryptedVault, MemoryVault

POPULATION = HotcrpPopulation(users=108, pc_members=8, papers=112, reviews=350)


def lifecycle(mode: str):
    db = generate_hotcrp(population=POPULATION, seed=19)
    if mode == "plaintext":
        vault = MemoryVault()
    else:
        vault = EncryptedVault(MemoryVault())
        key = SecretKey.generate()
        if mode == "encrypted":
            vault.register_owner(2, key=key)
        else:  # escrowed
            vault.register_owner(2, key=key, escrow=escrow_key(key))
    engine = Disguiser(db, vault=vault, seed=2)
    for spec in all_disguises():
        engine.register(spec)
    apply_report = engine.apply("HotCRP-GDPR+", uid=2)
    if mode == "encrypted":
        vault.unlock(2, key)
    elif mode == "escrowed":
        vault.lock(2)
        vault.unlock_via_escrow(2, "app", "third_party")
    reveal_report = engine.reveal(apply_report.disguise_id)
    return apply_report, reveal_report


@pytest.mark.parametrize("mode", ["plaintext", "encrypted", "escrowed"])
def bench_vault_crypto(benchmark, mode):
    apply_report, reveal_report = benchmark.pedantic(
        lambda: lifecycle(mode), rounds=3, iterations=1
    )
    print_table(
        f"A5: vault crypto mode '{mode}'",
        ["phase", "ms", "vault ops"],
        [
            ["apply", f"{apply_report.duration_s * 1e3:.1f}", apply_report.vault_stats.total],
            ["reveal", f"{reveal_report.duration_s * 1e3:.1f}", reveal_report.vault_stats.total],
        ],
    )
    assert reveal_report.entries_consumed == apply_report.vault_entries_written


def bench_cipher_primitive(benchmark):
    key = SecretKey.generate()
    payload = os.urandom(4096)

    def round_trip():
        return decrypt(key, encrypt(key, payload))

    result = benchmark(round_trip)
    assert result == payload


def bench_shamir_primitive(benchmark):
    secret = os.urandom(32)

    def split_and_recover():
        shares = split_secret(secret, threshold=2, shares=3)
        return recover_secret(shares[:2])

    result = benchmark(split_and_recover)
    assert result == secret
