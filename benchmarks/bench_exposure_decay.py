"""A8 — breach exposure over time under a decay policy (paper §1-§2).

The paper's motivation, rendered as a time series: a conference runs a
two-stage decay policy (scrub at 1 simulated year of inactivity, hard
delete at 3); we plot what a breach at each point would reveal. Exposure
must decrease monotonically and end near the floor.
"""

from __future__ import annotations

import pytest
from conftest import print_table

from repro import DecayPolicy, DecayStage, Disguiser, PolicyScheduler, SimClock
from repro.apps.hotcrp import HotcrpPopulation, all_disguises, generate_hotcrp
from repro.core.exposure import measure_exposure

YEAR = 365 * 86_400.0
POPULATION = HotcrpPopulation(users=86, pc_members=6, papers=90, reviews=280)


def run_decay_timeline():
    db = generate_hotcrp(population=POPULATION, seed=51)
    engine = Disguiser(db, seed=7)
    for spec in all_disguises():
        engine.register(spec)
    # Users went inactive at staggered times over 4 years.
    last_active = {uid: (uid % 8) * 0.5 * YEAR for uid in range(1, 87)}
    clock = SimClock(start=0.0)
    scheduler = PolicyScheduler(engine, clock)
    scheduler.add(
        DecayPolicy(
            "decay",
            stages=(
                DecayStage(age=1 * YEAR, spec_name="HotCRP-GDPR+"),
                DecayStage(age=3 * YEAR, spec_name="HotCRP-GDPR"),
            ),
            activity=lambda _db: last_active,
        )
    )
    series = []
    for year in range(0, 8):
        clock.now = year * YEAR
        scheduler.tick()
        report = measure_exposure(db, "ContactInfo")
        series.append((year, report))
    assert db.check_integrity() == []
    return series


def bench_exposure_decay(benchmark):
    series = benchmark.pedantic(run_decay_timeline, rounds=2, iterations=1)
    rows = [
        [
            f"year {year}",
            report.identifiable_users,
            report.pii_cells,
            report.linkable_contributions,
            report.total,
        ]
        for year, report in series
    ]
    print_table(
        "A8: breach exposure over time under the decay policy",
        ["time", "identifiable users", "PII cells", "linkable rows", "total"],
        rows,
    )
    totals = [report.total for _, report in series]
    assert all(a >= b for a, b in zip(totals, totals[1:])), "exposure must not rise"
    assert totals[-1] < totals[0] * 0.2, "decay should eliminate most exposure"
