"""A7 — application-query latency on clean vs disguised databases.

Disguising trades storage shape for privacy: placeholders add rows to the
user table, decorrelation rewrites FKs. This ablation asks what that does
to the *application's* read path (paper §2: transformations must not
compromise application functionality) by timing the HotCRP workload
operations on a clean conference, after one GDPR+, and after ConfAnon.
"""

from __future__ import annotations

import time

import pytest
from conftest import print_table

from repro import Disguiser
from repro.apps.hotcrp import HotcrpPopulation, all_disguises, generate_hotcrp
from repro.apps.hotcrp.workload import front_page, reviewer_dashboard

POPULATION = HotcrpPopulation(users=215, pc_members=15, papers=225, reviews=700)


def build(state: str):
    db = generate_hotcrp(population=POPULATION, seed=37)
    engine = Disguiser(db, seed=2)
    for spec in all_disguises():
        engine.register(spec)
    if state == "one-scrub":
        engine.apply("HotCRP-GDPR+", uid=2)
    elif state == "confanon":
        engine.apply("HotCRP-ConfAnon")
    return db


def workload(db) -> tuple[float, float]:
    started = time.perf_counter()
    page = front_page(db, limit=30)
    page_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for uid in range(3, 9):
        reviewer_dashboard(db, uid)
    dash_seconds = time.perf_counter() - started
    assert len(page) == 30
    return page_seconds, dash_seconds


STATES = ("clean", "one-scrub", "confanon")


@pytest.mark.parametrize("state", STATES)
def bench_app_queries(benchmark, state):
    db = build(state)
    page_seconds, dash_seconds = benchmark(lambda: workload(db))
    print_table(
        f"A7: application reads on a {state} database",
        ["operation", "ms", "user rows", "review rows"],
        [
            ["front page (30 papers)", f"{page_seconds * 1e3:.1f}",
             db.count("ContactInfo"), db.count("PaperReview")],
            ["6 reviewer dashboards", f"{dash_seconds * 1e3:.1f}", "", ""],
        ],
    )


def bench_app_queries_shape(benchmark):
    """Reads on a fully anonymized conference stay within a small factor of
    the clean baseline — placeholders grow the user table but indexed
    lookups keep the read path flat."""
    clean_db = build("clean")
    anon_db = build("confanon")
    benchmark(lambda: workload(clean_db))
    clean = sum(workload(clean_db))
    anon = sum(workload(anon_db))
    print_table(
        "A7 summary",
        ["state", "workload ms", "total rows"],
        [
            ["clean", f"{clean * 1e3:.1f}", clean_db.total_rows()],
            ["confanon", f"{anon * 1e3:.1f}", anon_db.total_rows()],
        ],
    )
    assert anon < clean * 5, "disguising must not cripple application reads"
