"""E2 — §6 claim: "the number of queries performed by Edna to fetch and
update the relevant to-be-disguised objects grows linearly with the number
of objects."

Two series, both with "objects" = rows the disguise actually touches:

* **GDPR+** — fixed conference, growing per-member footprint: the review
  load per PC member is scaled x{0.5, 1, 2, 4} by growing the review table
  while holding the PC constant, so one member's disguise touches
  proportionally more objects.
* **ConfAnon** — whole-conference disguise at x{0.25, 0.5, 1} of the paper
  size: objects = (almost) the whole database.

Each series is printed and fit by least squares; statements vs objects
must be a line (R^2 > 0.99) with an intercept small relative to the
largest point.
"""

from __future__ import annotations

import numpy as np
from conftest import conference_at, print_line, print_table

from repro import Disguiser
from repro.apps.hotcrp import HotcrpPopulation, all_disguises, generate_hotcrp

REVIEW_SCALES = (0.5, 1.0, 2.0, 4.0)
CONF_SCALES = (0.25, 0.5, 1.0)
SUBJECT = 2


def engine_with_reviews(review_scale: float):
    population = HotcrpPopulation(
        users=430, pc_members=30, papers=450, reviews=round(1400 * review_scale)
    )
    db = generate_hotcrp(population=population, seed=42)
    engine = Disguiser(db, seed=1)
    for spec in all_disguises():
        engine.register(spec)
    return db, engine


def gdpr_plus_cost(review_scale: float) -> tuple[int, int, float]:
    db, engine = engine_with_reviews(review_scale)
    report = engine.apply("HotCRP-GDPR+", uid=SUBJECT)
    return report.rows_touched, report.db_stats.total, report.duration_s


def confanon_cost(scale: float) -> tuple[int, int, float]:
    db, engine = conference_at(scale)
    report = engine.apply("HotCRP-ConfAnon")
    return report.rows_touched, report.db_stats.total, report.duration_s


def _fit(series: list[tuple[int, int, float]]) -> tuple[float, float, float]:
    objects = np.array([row[0] for row in series], dtype=float)
    statements = np.array([row[1] for row in series], dtype=float)
    slope, intercept = np.polyfit(objects, statements, 1)
    predicted = slope * objects + intercept
    ss_res = float(np.sum((statements - predicted) ** 2))
    ss_tot = float(np.sum((statements - statements.mean()) ** 2))
    return slope, intercept, 1.0 - ss_res / ss_tot


def _print_series(title: str, labels, series) -> None:
    rows = [
        [label, objects, statements, f"{statements / max(objects, 1):.1f}", f"{secs * 1e3:.1f} ms"]
        for label, (objects, statements, secs) in zip(labels, series)
    ]
    print_table(title, ["point", "objects", "statements", "stmt/object", "latency"], rows)


def bench_linear_scaling(benchmark):
    gdpr_series = [gdpr_plus_cost(scale) for scale in REVIEW_SCALES]
    conf_series = [confanon_cost(scale) for scale in CONF_SCALES]

    benchmark.pedantic(lambda: gdpr_plus_cost(1.0), rounds=3, iterations=1)

    _print_series(
        "E2a: HotCRP-GDPR+ statements vs per-member footprint",
        [f"reviews x{s}" for s in REVIEW_SCALES],
        gdpr_series,
    )
    slope, intercept, r_squared = _fit(gdpr_series)
    print_line(f"E2a fit: statements = {slope:.2f} * objects + {intercept:.1f} (R^2 = {r_squared:.4f})")
    assert r_squared > 0.99, "GDPR+ statements are not linear in objects"
    assert slope > 0
    assert abs(intercept) < gdpr_series[-1][1] * 0.5

    _print_series(
        "E2b: HotCRP-ConfAnon statements vs conference size",
        [f"conf x{s}" for s in CONF_SCALES],
        conf_series,
    )
    slope, intercept, r_squared = _fit(conf_series)
    print_line(f"E2b fit: statements = {slope:.2f} * objects + {intercept:.1f} (R^2 = {r_squared:.4f})")
    assert r_squared > 0.99, "ConfAnon statements are not linear in objects"
    assert slope > 0
    assert abs(intercept) < conf_series[-1][1] * 0.5
