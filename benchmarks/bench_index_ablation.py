"""A3 — secondary-index ablation for predicate evaluation.

The engine auto-indexes every foreign-key column, which is what keeps a
disguise's cost proportional to *its* objects rather than to the database
size (E2's linearity). This ablation drops those indexes and re-runs one
PC member's GDPR+ at the paper-size conference: every per-user predicate
then becomes a full scan, and latency scales with the database instead.
"""

from __future__ import annotations

import pytest
from conftest import paper_conference, print_table


def scrub(with_indexes: bool):
    db, engine = paper_conference()
    if not with_indexes:
        for name in db.table_names:
            table = db.table(name)
            for fk in table.schema.foreign_keys:
                table.drop_index(fk.column)
    return engine.apply("HotCRP-GDPR+", uid=6)


@pytest.mark.parametrize("with_indexes", [True, False], ids=["indexed", "full-scan"])
def bench_index_ablation(benchmark, with_indexes):
    report = benchmark.pedantic(
        lambda: scrub(with_indexes), rounds=3, iterations=1
    )
    print_table(
        f"A3: FK indexes {'ON' if with_indexes else 'OFF'}",
        ["ms", "db stmts", "rows touched"],
        [[f"{report.duration_s * 1e3:.1f}", report.db_stats.total, report.rows_touched]],
    )
    # Same logical outcome either way.
    assert report.rows_touched > 0


def bench_index_ablation_summary(benchmark):
    """Direct comparison: the indexed run must be markedly faster."""
    indexed = scrub(True)
    full_scan = scrub(False)
    benchmark.pedantic(lambda: scrub(True), rounds=3, iterations=1)
    speedup = full_scan.duration_s / indexed.duration_s
    print_table(
        "A3 summary",
        ["case", "ms", "rows touched"],
        [
            ["indexed", f"{indexed.duration_s * 1e3:.1f}", indexed.rows_touched],
            ["full-scan", f"{full_scan.duration_s * 1e3:.1f}", full_scan.rows_touched],
            ["speedup", f"{speedup:.1f}x", ""],
        ],
    )
    assert indexed.rows_touched == full_scan.rows_touched
    assert speedup > 1.3, "FK indexes should speed up per-user disguises"
